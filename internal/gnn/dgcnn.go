package gnn

import (
	"math"
	"math/rand"

	"mvpar/internal/nn"
	"mvpar/internal/tensor"
)

// Config sizes a DGCNN. The paper's reference configuration uses four
// graph convolutions with a single sorting channel last, SortPooling with
// k = 135 on benchmark-scale graphs, two 1-D convolutions and a dense
// layer; the defaults here keep that architecture at the scale of our
// sub-PEGs.
type Config struct {
	// Prefix namespaces parameter names so two DGCNNs (the two views)
	// can be serialized side by side.
	Prefix       string
	InputDim     int
	ConvChannels []int // channel widths of the graph conv stack; last is the sort channel
	SortK        int   // SortPooling k
	Conv1Filters int
	Conv2Filters int
	DenseDim     int // penultimate (fusion-facing) dimension
	NumClasses   int
	Seed         int64
}

// DefaultConfig returns the standard configuration for the given input
// feature dimension, scaled to this corpus's sub-PEG sizes (tens of
// nodes) so the full experiment suite runs in minutes on one CPU.
func DefaultConfig(inputDim int) Config {
	return Config{
		InputDim:     inputDim,
		ConvChannels: []int{16, 16, 16, 1},
		SortK:        16,
		Conv1Filters: 16,
		Conv2Filters: 32,
		DenseDim:     48,
		NumClasses:   2,
		Seed:         1,
	}
}

// PaperConfig returns the configuration at the paper's reported sizes
// (§IV-B): 200 node feature dimensions and SortPooling k = 135, which
// match benchmark-scale PEGs with hundreds of nodes. It trains the same
// architecture roughly 50x slower than DefaultConfig; use it when
// mirroring the paper's exact hyperparameters matters more than wall
// clock.
func PaperConfig(inputDim int) Config {
	return Config{
		InputDim:     inputDim,
		ConvChannels: []int{200, 200, 200, 1},
		SortK:        135,
		Conv1Filters: 16,
		Conv2Filters: 32,
		DenseDim:     128,
		NumClasses:   2,
		Seed:         1,
	}
}

// graphConv is one graph convolution layer with manual backprop. Its
// buffers come from the owning DGCNN's arena; wT caches the weight
// transpose the backward pass multiplies by, invalidated by optimizer
// steps (nn.Param.Bump).
type graphConv struct {
	w       *nn.Param
	wT      nn.TransposeCache
	scratch *tensor.Arena

	lastM *tensor.Matrix // Â·H input aggregate
	lastZ *tensor.Matrix // tanh output
	g     *EncodedGraph
}

func newGraphConv(name string, in, out int, rng *rand.Rand) *graphConv {
	return &graphConv{w: nn.NewParam(name, tensor.XavierInit(in, out, rng))}
}

// forward computes Z = tanh(Â H W) via the CSR propagation kernel.
func (l *graphConv) forward(g *EncodedGraph, h *tensor.Matrix) *tensor.Matrix {
	l.g = g
	l.lastM = l.scratch.Get(g.N, h.Cols)
	g.propagateInto(h, l.lastM)
	z := l.scratch.Get(g.N, l.w.Value.Cols)
	tensor.MatMulInto(l.lastM, l.w.Value, z)
	tensor.ApplyInto(z, math.Tanh, z)
	l.lastZ = z
	return z
}

// backward receives dZ, accumulates dW, and returns dH.
func (l *graphConv) backward(dz *tensor.Matrix) *tensor.Matrix {
	dpre := l.scratch.Get(dz.Rows, dz.Cols)
	for i := range dz.Data {
		z := l.lastZ.Data[i]
		dpre.Data[i] = dz.Data[i] * (1 - z*z)
	}
	// Per-sample dW in a zeroed buffer, folded into Grad with one
	// AddInPlace (the data-parallel bit-identity contract).
	mT := l.scratch.Get(l.lastM.Cols, l.lastM.Rows)
	tensor.TransposeInto(l.lastM, mT)
	dw := l.scratch.Get(l.w.Value.Rows, l.w.Value.Cols)
	tensor.MatMulInto(mT, dpre, dw)
	l.w.Grad.AddInPlace(dw)
	dm := l.scratch.Get(dpre.Rows, l.w.Value.Rows)
	tensor.MatMulInto(dpre, l.wT.Of(l.w), dm)
	dh := l.scratch.Get(l.g.N, dm.Cols)
	l.g.propagateTInto(dm, dh)
	return dh
}

// sortPool implements SortPooling: orders nodes by the last (sort) channel
// descending and keeps the top k rows, zero-padding small graphs, so the
// downstream 1-D convolution sees a fixed-size input. Sort keys, index
// buffers and the permutation are reused across calls.
type sortPool struct {
	k       int
	scratch *tensor.Arena

	perm      []int // kept row -> source row (-1 for padding)
	keys      []float64
	idx, tmp  []int
	nIn, cols int
}

func (s *sortPool) forward(z *tensor.Matrix) *tensor.Matrix {
	s.nIn = z.Rows
	s.cols = z.Cols
	s.keys = growFloats(s.keys, z.Rows)
	s.idx = growInts(s.idx, z.Rows)
	s.tmp = growInts(s.tmp, z.Rows)
	for i := 0; i < z.Rows; i++ {
		// Negate so the ascending argsort yields descending keys.
		s.keys[i] = -z.At(i, z.Cols-1)
	}
	tensor.ArgsortInto(s.keys, s.idx, s.tmp)
	out := s.scratch.Get(s.k, z.Cols) // zeroed: rows past nIn stay padding
	s.perm = growInts(s.perm, s.k)
	for i := 0; i < s.k; i++ {
		if i < len(s.idx) {
			s.perm[i] = s.idx[i]
			copy(out.Row(i), z.Row(s.idx[i]))
		} else {
			s.perm[i] = -1
		}
	}
	return out
}

func (s *sortPool) backward(grad *tensor.Matrix) *tensor.Matrix {
	dz := s.scratch.Get(s.nIn, s.cols)
	for i := 0; i < s.k; i++ {
		if src := s.perm[i]; src >= 0 {
			copy(dz.Row(src), grad.Row(i))
		}
	}
	return dz
}

// growInts returns a length-n int slice, reusing s's storage when it is
// large enough (callers overwrite every element).
func growInts(s []int, n int) []int {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]int, n)
}

// growFloats is growInts for float64 slices.
func growFloats(s []float64, n int) []float64 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]float64, n)
}

// DGCNN is the end-to-end graph classifier of figure 6: graph conv stack
// with concatenated channels, SortPooling, Conv1D/MaxPool/Conv1D, a dense
// penultimate layer, and a classification head. PenultForward exposes the
// fusion-facing vector the multi-view model consumes.
//
// Every layer draws its activation and gradient buffers from one arena
// owned by the model, reset at the start of each forward pass — so
// steady-state training allocates nothing. Consequently outputs are valid
// only until the model's next forward; callers that hold a result across
// samples must Clone it.
type DGCNN struct {
	Cfg Config

	arena *tensor.Arena

	convs []*graphConv
	pool  *sortPool
	conv1 *nn.Conv1D
	pool1 *nn.MaxPool1D
	conv2 *nn.Conv1D
	dense *nn.Dense
	act   *nn.Tanh
	head  *nn.Dense

	flat1 *nn.Flatten
	flat2 *nn.Flatten

	// caches for backward
	convOuts []*tensor.Matrix
	offsets  []int
	totalCh  int
}

// NewDGCNN builds a DGCNN from cfg.
func NewDGCNN(cfg Config, rng *rand.Rand) *DGCNN {
	arena := tensor.NewArena()
	d := &DGCNN{Cfg: cfg, arena: arena, pool: &sortPool{k: cfg.SortK, scratch: arena}}
	in := cfg.InputDim
	total := 0
	for i, ch := range cfg.ConvChannels {
		gc := newGraphConv(name(cfg.Prefix+"gc", i), in, ch, rng)
		gc.scratch = arena
		d.convs = append(d.convs, gc)
		in = ch
		total += ch
	}
	d.totalCh = total
	d.offsets = make([]int, len(d.convs)+1)
	for i, c := range d.convs {
		d.offsets[i+1] = d.offsets[i] + c.w.Value.Cols
	}
	d.conv1 = nn.NewConv1D(cfg.Prefix+"conv1", 1, cfg.Conv1Filters, total, total, rng)
	d.pool1 = nn.NewMaxPool1D(2, 2)
	kernel2 := 5
	if cfg.SortK/2 < kernel2 {
		kernel2 = cfg.SortK / 2
		if kernel2 < 1 {
			kernel2 = 1
		}
	}
	d.conv2 = nn.NewConv1D(cfg.Prefix+"conv2", cfg.Conv1Filters, cfg.Conv2Filters, kernel2, 1, rng)
	conv2Out := (cfg.SortK/2-kernel2)/1 + 1
	d.dense = nn.NewDense(cfg.Prefix+"dense", cfg.Conv2Filters*conv2Out, cfg.DenseDim, rng)
	// Tanh keeps the penultimate vector bounded so the multi-view fusion
	// tanh (eq. 5) cannot saturate on large activations.
	d.act = &nn.Tanh{}
	d.head = nn.NewDense(cfg.Prefix+"head", cfg.DenseDim, cfg.NumClasses, rng)
	d.flat1 = &nn.Flatten{}
	d.flat2 = &nn.Flatten{}
	d.conv1.Scratch = arena
	d.pool1.Scratch = arena
	d.conv2.Scratch = arena
	d.dense.Scratch = arena
	d.act.Scratch = arena
	d.head.Scratch = arena
	return d
}

func name(prefix string, i int) string {
	return prefix + string(rune('0'+i))
}

// Replicate returns a worker-private copy for data-parallel training and
// evaluation: the replica rebuilds the full layer stack (own arena, own
// activation caches, own gradient and transpose-cache buffers) and then
// rebinds every parameter to the master's Value storage and revision
// counter, so forward passes see the master weights — and master optimizer
// steps invalidate replica transpose caches — while backward passes stay
// isolated. Params() order is stable across construction, which makes the
// positional rebind sound.
func (d *DGCNN) Replicate() *DGCNN {
	rep := NewDGCNN(d.Cfg, rand.New(rand.NewSource(0)))
	src := d.Params()
	for i, p := range rep.Params() {
		p.Rebind(src[i])
	}
	return rep
}

// Params returns every trainable parameter.
func (d *DGCNN) Params() []*nn.Param {
	var ps []*nn.Param
	for _, c := range d.convs {
		ps = append(ps, c.w)
	}
	ps = append(ps, d.conv1.Params()...)
	ps = append(ps, d.conv2.Params()...)
	ps = append(ps, d.dense.Params()...)
	ps = append(ps, d.head.Params()...)
	return ps
}

// forwardConvs runs the graph convolution stack and returns the
// channel-concatenated node representations (N x totalCh).
func (d *DGCNN) forwardConvs(g *EncodedGraph) *tensor.Matrix {
	// One reset per sample: every buffer handed out since the previous
	// forward (including backward-pass buffers) is reclaimed here.
	d.arena.Reset()
	h := g.X
	d.convOuts = d.convOuts[:0]
	for _, c := range d.convs {
		h = c.forward(g, h)
		d.convOuts = append(d.convOuts, h)
	}
	cat := d.arena.Get(g.N, d.totalCh)
	for ci, z := range d.convOuts {
		lo := d.offsets[ci]
		for r := 0; r < z.Rows; r++ {
			copy(cat.Row(r)[lo:lo+z.Cols], z.Row(r))
		}
	}
	return cat
}

// backwardConvs backpropagates a gradient on the concatenated conv
// outputs through the graph convolution stack, threading the skip
// gradients between layers.
func (d *DGCNN) backwardConvs(g *tensor.Matrix) {
	var dH *tensor.Matrix
	for i := len(d.convs) - 1; i >= 0; i-- {
		lo, hi := d.offsets[i], d.offsets[i+1]
		dz := d.arena.Get(g.Rows, hi-lo)
		for r := 0; r < g.Rows; r++ {
			copy(dz.Row(r), g.Row(r)[lo:hi])
		}
		if dH != nil {
			dz.AddInPlace(dH)
		}
		dH = d.convs[i].backward(dz)
	}
}

// PenultForward runs the network up to the penultimate dense layer and
// returns the 1 x DenseDim fusion vector (owned by the model's arena:
// valid until the next forward).
func (d *DGCNN) PenultForward(g *EncodedGraph) *tensor.Matrix {
	cat := d.forwardConvs(g)
	pooled := d.pool.forward(cat)               // k x C
	row := d.flat1.Forward(pooled)              // 1 x k*C
	c1 := d.conv1.Forward(row)                  // F1 x k
	p1 := d.pool1.Forward(c1)                   // F1 x k/2
	c2 := d.conv2.Forward(p1)                   // F2 x L2
	flat := d.flat2.Forward(c2)                 // 1 x F2*L2
	return d.act.Forward(d.dense.Forward(flat)) // 1 x DenseDim
}

// Forward returns classification logits for the graph.
func (d *DGCNN) Forward(g *EncodedGraph) *tensor.Matrix {
	return d.head.Forward(d.PenultForward(g))
}

// BackwardFromPenult backpropagates a gradient on the penultimate vector
// through the whole graph stack, accumulating parameter gradients.
func (d *DGCNN) BackwardFromPenult(dPenult *tensor.Matrix) {
	g := d.dense.Backward(d.act.Backward(dPenult))
	g = d.flat2.Backward(g)
	g = d.conv2.Backward(g)
	g = d.pool1.Backward(g)
	g = d.conv1.Backward(g)
	g = d.flat1.Backward(g)
	g = d.pool.backward(g)
	d.backwardConvs(g)
}

// Backward backpropagates a gradient on the logits.
func (d *DGCNN) Backward(dLogits *tensor.Matrix) {
	d.BackwardFromPenult(d.head.Backward(dLogits))
}
