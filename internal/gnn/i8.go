package gnn

import (
	"mvpar/internal/nn"
	"mvpar/internal/tensor"
	"mvpar/internal/tensor/f32"
	"mvpar/internal/tensor/i8"
)

// This file is the int8 inference engine, one precision rung below f32.go:
// a one-time symmetric per-channel quantization of a trained MVGNN's dense
// and Conv1D weights into int8 (stored pre-transposed like the f32 mirror,
// one scale per output channel), plus a forward-only pipeline that
// quantizes activations dynamically per sample — per row where a kernel
// reads rows against per-channel weights, per tensor where it mixes rows —
// accumulates in int32, and dequantizes through the table tanh shared with
// the f32 tier. Biases stay float32 and are folded in after accumulation.
//
// Training never touches this path, and unlike the f32 tier the int8 tier
// is licensed at a *non-zero* drift budget: `mvpar parity -precision int8`
// holds it to a documented per-suite accuracy drift and flip count on the
// frozen seed corpus instead of indistinguishability.

// conv1dI8 is a quantized nn.Conv1D: int8 weights stored transposed
// (inCh*kernel x outCh, one scale per filter) for the GEMM formulation of
// the forward pass, and float32 biases.
type conv1dI8 struct {
	inCh, outCh, kernel, stride int
	wt                          *i8.Matrix
	wScale                      []float32
	b                           []float32
}

func quantizeConv1DI8(c *nn.Conv1D) conv1dI8 {
	// Quantize per filter (row of the outCh x inCh*kernel weight), then
	// transpose the codes so each GEMM b-row is one kernel tap across all
	// filters. One-time model quantization: allocates.
	w, scales := i8.QuantizeRowsPerChannel(c.W.Value)
	wt := i8.New(w.Cols, w.Rows)
	for f := 0; f < w.Rows; f++ {
		for k, v := range w.Row(f) {
			wt.Data[k*w.Rows+f] = v
		}
	}
	q := conv1dI8{
		inCh:   c.InChannels,
		outCh:  c.OutChannels,
		kernel: c.KernelSize,
		stride: c.Stride,
		wt:     wt,
		wScale: scales,
		b:      make([]float32, c.B.Value.Cols),
	}
	for i, v := range c.B.Value.Data {
		q.b[i] = float32(v)
	}
	return q
}

func (c *conv1dI8) outLen(l int) int {
	if l < c.kernel {
		return 0
	}
	return (l-c.kernel)/c.stride + 1
}

// forwardInto mirrors conv1dF32.forwardInto on the integer kernel as one
// GEMM: the input windows become rows of an outLen x inCh*kernel int8
// matrix (zero-copy when a single input channel's stride equals its
// kernel — the first readout conv, where each window is one sort-pooled
// node — otherwise gathered into patch, an arena buffer of that shape),
// multiplied against the transposed weights into acc (outLen x outCh),
// then transpose-dequantized into out with the bias folded in. x is the
// per-tensor quantized input and xScale its grid (per tensor, not per
// row, because windows mix input rows).
func (c *conv1dI8) forwardInto(x *i8.Matrix, xScale float32, out *f32.Matrix, acc *i8.Acc, patch *i8.Matrix) {
	outLen := out.Cols
	wk := c.inCh * c.kernel
	var a *i8.Matrix
	if c.inCh == 1 && c.stride == c.kernel {
		a = &i8.Matrix{Rows: outLen, Cols: wk, Data: x.Row(0)[:outLen*wk]}
	} else {
		for t := 0; t < outLen; t++ {
			start := t * c.stride
			prow := patch.Row(t)
			for ch := 0; ch < c.inCh; ch++ {
				copy(prow[ch*c.kernel:(ch+1)*c.kernel], x.Row(ch)[start:start+c.kernel])
			}
		}
		a = patch
	}
	i8.MatMulInto(a, c.wt, acc)
	i8.DequantBiasTransposeInto(acc, xScale, c.wScale, c.b, out)
}

// denseI8 is a quantized nn.Dense: the weight stored transposed (out x in)
// with one scale per output channel, bias in float32.
type denseI8 struct {
	wt     *i8.Matrix
	wScale []float32
	b      []float32
}

func quantizeDenseI8(d *nn.Dense) denseI8 {
	wt, scales := i8.QuantizeTransposedPerChannel(d.W.Value)
	q := denseI8{wt: wt, wScale: scales, b: make([]float32, d.B.Value.Cols)}
	for i, v := range d.B.Value.Data {
		q.b[i] = float32(v)
	}
	return q
}

// dgcnnWeightsI8 is the read-only quantized parameter set of one view,
// shared by every MVGNNI8 replica. Graph-conv weights keep their in x out
// layout (per-column scales) for the register-blocked int8 GEMM — except
// the final layer, which stays float32: its output is the SortPooling
// channel, and an ordering decision made on quantized scores reorders the
// pooled node set discretely (a label-flipping jump, not a rounding
// drift). The final layer is the in x 1 sort head, so the float32 holdout
// costs almost nothing while the wide layers stay integer.
type dgcnnWeightsI8 struct {
	cfg          Config
	totalCh      int
	convW        []*i8.Matrix // all conv layers but the last
	convWScale   [][]float32
	sortW        *f32.Matrix // final conv layer (sort channel), float32
	conv1, conv2 conv1dI8
	poolK, poolS int
	dense, head  denseI8
}

func quantizeDGCNNI8(d *DGCNN) *dgcnnWeightsI8 {
	w := &dgcnnWeightsI8{
		cfg:     d.Cfg,
		totalCh: d.totalCh,
		conv1:   quantizeConv1DI8(d.conv1),
		conv2:   quantizeConv1DI8(d.conv2),
		poolK:   d.pool1.KernelSize,
		poolS:   d.pool1.Stride,
		dense:   quantizeDenseI8(d.dense),
		head:    quantizeDenseI8(d.head),
	}
	last := len(d.convs) - 1
	for _, c := range d.convs[:last] {
		wq, scales := i8.QuantizeColsPerChannel(c.w.Value)
		w.convW = append(w.convW, wq)
		w.convWScale = append(w.convWScale, scales)
	}
	w.sortW = f32.FromMatrix(d.convs[last].w.Value)
	return w
}

// dgcnnI8 is the per-replica forward state of one quantized view: the
// shared weights plus private scratch — sort buffers, the quantized CSR
// value buffer, per-row scale buffers, and a conv patch buffer. int8 and
// int32 buffers come from the owning MVGNNI8's integer arena, float32
// intermediates (tanh outputs, pooling, logits) from its f32 arena.
type dgcnnI8 struct {
	w      *dgcnnWeightsI8
	arena  *f32.Arena
	iarena *i8.Arena

	keys      []float64
	idx, tmp  []int
	aVals     []int8
	aVals32   []float32
	rowScales []float32
	hScales   []float32
	sp        i8.Sparse
	sp32      f32.Sparse
}

// penultForward mirrors dgcnnF32.penultForward one tier down: graph-conv
// stack (int8 SpMM → per-row requant → int8 GEMM → dequant+tanh, with the
// final sort-channel layer in float32) with channel concat in float32,
// SortPooling, Conv1D/MaxPool/Conv1D on per-tensor quantized inputs, and
// the dense+tanh readout with the dequantize-then-table-tanh epilogue.
// The returned 1 x DenseDim vector lives in the replica's f32 arena
// (valid until the next predict).
func (d *dgcnnI8) penultForward(g *EncodedGraph) *f32.Matrix {
	w := d.w
	// Per-sample quantization: node features per column (SpMM mixes rows
	// but never columns, and feature channels are where dynamic ranges
	// diverge) and adjacency values per tensor onto the CSR structure.
	// The adjacency is also loaded in float32 for the sort-channel layer.
	// h32 tracks the current layer input in float32 (the previous layer's
	// tanh output), feeding the float32 sort-channel layer at the end; the
	// input features quantize from it (bit-identical to quantizing the
	// float64 source: conversion commutes with the per-column grids).
	h32 := d.arena.Get(g.X.Rows, g.X.Cols)
	f32.ConvertInto(g.X, h32)
	hq := d.iarena.Get(g.X.Rows, g.X.Cols)
	d.hScales = i8.QuantizeColsF32Into(h32, hq, d.hScales)
	d.aVals = i8.LoadSparse(&d.sp, g.Adjacency(), d.aVals)
	d.aVals32 = f32.LoadSparse(&d.sp32, g.Adjacency(), d.aVals32)

	cat := d.arena.Get(g.N, w.totalCh)
	off := 0
	for li, wc := range w.convW {
		acc := d.iarena.GetAcc(g.N, hq.Cols)
		i8.SpMMInto(&d.sp, hq, acc)
		// Requantize the aggregate back to int8 on per-row grids (the
		// layout the per-channel GEMM wants), folding in the per-column
		// feature scales.
		mq := d.iarena.Get(g.N, hq.Cols)
		d.rowScales = i8.RequantRowsScaledInto(acc, d.sp.Scale, d.hScales, mq, d.rowScales)
		accZ := d.iarena.GetAcc(g.N, wc.Cols)
		i8.MatMulInto(mq, wc, accZ)
		z := d.arena.Get(g.N, wc.Cols)
		i8.DequantTanhInto(accZ, d.rowScales, w.convWScale[li], z)
		for r := 0; r < g.N; r++ {
			copy(cat.Row(r)[off:off+z.Cols], z.Row(r))
		}
		off += z.Cols
		// Next layer's input: the tanh output back on per-column grids.
		hq = d.iarena.Get(g.N, z.Cols)
		d.hScales = i8.QuantizeColsF32Into(z, hq, d.hScales)
		h32 = z
	}

	// Final layer in float32: its output is the SortPooling channel, and
	// ordering must not be decided on quantized scores (see dgcnnWeightsI8).
	m32 := d.arena.Get(g.N, h32.Cols)
	f32.SpMMInto(&d.sp32, h32, m32)
	zs := d.arena.Get(g.N, w.sortW.Cols)
	f32.MatMulTanhInto(m32, w.sortW, zs)
	for r := 0; r < g.N; r++ {
		copy(cat.Row(r)[off:off+zs.Cols], zs.Row(r))
	}

	// SortPooling on the float32 concat: order nodes by the sort channel
	// descending, keep k rows, zero-pad small graphs. Argsort keys stay
	// float64 so the ordering machinery is shared with the f64/f32 paths.
	d.keys = growFloats(d.keys, g.N)
	d.idx = growInts(d.idx, g.N)
	d.tmp = growInts(d.tmp, g.N)
	for i := 0; i < g.N; i++ {
		d.keys[i] = -float64(cat.At(i, w.totalCh-1))
	}
	tensor.ArgsortInto(d.keys, d.idx, d.tmp)
	pooled := d.arena.Get(w.cfg.SortK, w.totalCh) // zeroed: rows past N stay padding
	for i := 0; i < w.cfg.SortK && i < g.N; i++ {
		copy(pooled.Row(i), cat.Row(d.idx[i]))
	}

	flat1 := f32.Matrix{Rows: 1, Cols: pooled.Rows * pooled.Cols, Data: pooled.Data}
	xq1 := d.iarena.Get(1, flat1.Cols)
	s1 := i8.QuantizeTensorF32Into(&flat1, xq1)
	c1 := d.arena.Get(w.conv1.outCh, w.conv1.outLen(flat1.Cols))
	acc1 := d.iarena.GetAcc(c1.Cols, w.conv1.outCh)
	w.conv1.forwardInto(xq1, s1, c1, acc1, nil)
	p1 := d.arena.Get(c1.Rows, poolOutLen(c1.Cols, w.poolK, w.poolS))
	maxPool1DF32(c1, p1, w.poolK, w.poolS)
	xq2 := d.iarena.Get(p1.Rows, p1.Cols)
	s2 := i8.QuantizeTensorF32Into(p1, xq2)
	c2 := d.arena.Get(w.conv2.outCh, w.conv2.outLen(p1.Cols))
	acc2 := d.iarena.GetAcc(c2.Cols, w.conv2.outCh)
	patch2 := d.iarena.Get(c2.Cols, w.conv2.inCh*w.conv2.kernel)
	w.conv2.forwardInto(xq2, s2, c2, acc2, patch2)
	flat2 := f32.Matrix{Rows: 1, Cols: c2.Rows * c2.Cols, Data: c2.Data}
	xq3 := d.iarena.Get(1, flat2.Cols)
	s3 := i8.QuantizeTensorF32Into(&flat2, xq3)
	pen := d.arena.Get(1, w.cfg.DenseDim)
	i8.DenseTanhForwardInto(xq3, s3, w.dense.wt, w.dense.wScale, w.dense.b, pen)
	return pen
}

// logits applies the view's own classification head to the (float32)
// penultimate vector through the quantized head weights.
func (d *dgcnnI8) logits(pen *f32.Matrix) *f32.Matrix {
	xq := d.iarena.Get(1, pen.Cols)
	s := i8.QuantizeTensorF32Into(pen, xq)
	out := d.arena.Get(1, d.w.cfg.NumClasses)
	i8.DenseForwardInto(xq, s, d.w.head.wt, d.w.head.wScale, d.w.head.b, out)
	return out
}

// mvgnnWeightsI8 is the shared quantized parameter set of the full
// multi-view model.
type mvgnnWeightsI8 struct {
	classes     int
	predictMode int
	node, strct *dgcnnWeightsI8
	out         denseI8
}

// MVGNNI8 is a forward-only int8 replica of a trained MVGNN. Replicas
// share the quantized weights (read-only) and own their scratch, so — like
// f64 and f32 replicas — each must stay goroutine-private while the set of
// replicas serves concurrently.
type MVGNNI8 struct {
	w           *mvgnnWeightsI8
	arena       *f32.Arena
	iarena      *i8.Arena
	node, strct dgcnnI8
}

func newMVGNNI8(w *mvgnnWeightsI8) *MVGNNI8 {
	arena := f32.NewArena()
	iarena := i8.NewArena()
	return &MVGNNI8{
		w:      w,
		arena:  arena,
		iarena: iarena,
		node:   dgcnnI8{w: w.node, arena: arena, iarena: iarena},
		strct:  dgcnnI8{w: w.strct, arena: arena, iarena: iarena},
	}
}

// QuantizeI8 snapshots the model's parameters into an int8 inference
// replica. The snapshot is one-time: later optimizer steps or parameter
// reloads on m are NOT reflected — quantize after training (or after
// LoadParams), which is when core.Classifier builds its handles.
func (m *MVGNN) QuantizeI8() *MVGNNI8 {
	return newMVGNNI8(&mvgnnWeightsI8{
		classes:     m.NodeView.Cfg.NumClasses,
		predictMode: m.predictMode,
		node:        quantizeDGCNNI8(m.NodeView),
		strct:       quantizeDGCNNI8(m.StructView),
		out:         quantizeDenseI8(m.out),
	})
}

// Replicate returns another replica sharing q's quantized weights but
// owning private scratch, for concurrent serving.
func (q *MVGNNI8) Replicate() *MVGNNI8 { return newMVGNNI8(q.w) }

// PredictWithProba is the int8 mirror of MVGNN.PredictWithProba: one
// forward pass of the head selected during training, returning the
// predicted class and P(class=1).
func (q *MVGNNI8) PredictWithProba(s Sample) (int, float64) {
	switch q.w.predictMode {
	case 1:
		return q.predictView(&q.node, s.Node)
	case 2:
		return q.predictView(&q.strct, s.Struct)
	}
	q.arena.Reset()
	q.iarena.Reset()
	hn := q.node.penultForward(s.Node)
	hs := q.strct.penultForward(s.Struct)
	ln := q.node.logits(hn)
	ls := q.strct.logits(hs)
	cat := q.arena.Get(1, ln.Cols+ls.Cols)
	copy(cat.Data[:ln.Cols], ln.Row(0))
	copy(cat.Data[ln.Cols:], ls.Row(0))
	f32.TanhInto(cat)
	xq := q.iarena.Get(1, cat.Cols)
	sc := i8.QuantizeTensorF32Into(cat, xq)
	fused := q.arena.Get(1, q.w.classes)
	i8.DenseForwardInto(xq, sc, q.w.out.wt, q.w.out.wScale, q.w.out.b, fused)
	return classFromF32(fused)
}

// PredictWithProbaNodeView is the int8 degraded path: node view only.
func (q *MVGNNI8) PredictWithProbaNodeView(s Sample) (int, float64) {
	return q.predictView(&q.node, s.Node)
}

func (q *MVGNNI8) predictView(d *dgcnnI8, g *EncodedGraph) (int, float64) {
	q.arena.Reset()
	q.iarena.Reset()
	return classFromF32(d.logits(d.penultForward(g)))
}
