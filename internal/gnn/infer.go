package gnn

import (
	"context"

	"mvpar/internal/nn"
	"mvpar/internal/obs/trace"
	"mvpar/internal/tensor"
)

// PredictWithProba returns the predicted class and P(class=1) for one
// sample from a single forward pass of the head selected during
// training. It is bit-identical to calling Predict and PredictProba
// separately (the forward pass is deterministic, so both read the same
// logits) at half the inference cost — the pairing every serving-path
// classification wants.
func (m *MVGNN) PredictWithProba(s Sample) (int, float64) {
	switch m.predictMode {
	case 1:
		return classFrom(m.NodeView.Forward(s.Node))
	case 2:
		return classFrom(m.StructView.Forward(s.Struct))
	}
	return classFrom(m.Forward(s))
}

// PredictWithProbaNodeView is PredictWithProba restricted to the node
// view's own head — the degraded-prediction path used when a sample has
// no usable structural view (the paper's Static-GNN geometry).
func (m *MVGNN) PredictWithProbaNodeView(s Sample) (int, float64) {
	return classFrom(m.NodeView.Forward(s.Node))
}

// PredictWithProbaContext is PredictWithProba under a request trace: if
// ctx carries one, the forward pass is recorded as a "gnn.forward" span
// annotated with the sample's loop ID. On an untraced context the span
// calls are free (no allocations, one context lookup), so the
// bit-identical batch path pays nothing.
func (m *MVGNN) PredictWithProbaContext(ctx context.Context, s Sample) (int, float64) {
	_, sp := trace.StartSpan(ctx, "gnn.forward")
	if sp != nil {
		sp.SetAttrInt("loop", int64(s.Meta.LoopID))
		defer sp.End()
	}
	return m.PredictWithProba(s)
}

// PredictWithProbaNodeViewContext is the traced degraded-path variant;
// the span carries view=node so a trace shows which head answered.
func (m *MVGNN) PredictWithProbaNodeViewContext(ctx context.Context, s Sample) (int, float64) {
	_, sp := trace.StartSpan(ctx, "gnn.forward")
	if sp != nil {
		sp.SetAttrInt("loop", int64(s.Meta.LoopID))
		sp.SetAttr("view", "node")
		defer sp.End()
	}
	return m.PredictWithProbaNodeView(s)
}

// classFrom reduces one logits row to (argmax class, P(class=1)).
func classFrom(logits *tensor.Matrix) (int, float64) {
	return nn.Predict(logits)[0], nn.Probabilities(logits).At(0, 1)
}
