package gnn

import (
	"context"

	"mvpar/internal/nn"
	"mvpar/internal/obs/trace"
	"mvpar/internal/tensor"
)

// PredictWithProba returns the predicted class and P(class=1) for one
// sample from a single forward pass of the head selected during
// training. It is bit-identical to calling Predict and PredictProba
// separately (the forward pass is deterministic, so both read the same
// logits) at half the inference cost — the pairing every serving-path
// classification wants.
func (m *MVGNN) PredictWithProba(s Sample) (int, float64) {
	switch m.predictMode {
	case 1:
		return classFrom(m.NodeView.Forward(s.Node))
	case 2:
		return classFrom(m.StructView.Forward(s.Struct))
	}
	return classFrom(m.Forward(s))
}

// PredictWithProbaNodeView is PredictWithProba restricted to the node
// view's own head — the degraded-prediction path used when a sample has
// no usable structural view (the paper's Static-GNN geometry).
func (m *MVGNN) PredictWithProbaNodeView(s Sample) (int, float64) {
	return classFrom(m.NodeView.Forward(s.Node))
}

// PredictWithProbaContext is PredictWithProba under a request trace: if
// ctx carries one, the forward pass is recorded as a "gnn.forward" span
// annotated with the sample's loop ID. On an untraced context the span
// calls are free (no allocations, one context lookup), so the
// bit-identical batch path pays nothing.
func (m *MVGNN) PredictWithProbaContext(ctx context.Context, s Sample) (int, float64) {
	_, sp := trace.StartSpan(ctx, "gnn.forward")
	if sp != nil {
		sp.SetAttrInt("loop", int64(s.Meta.LoopID))
		defer sp.End()
	}
	return m.PredictWithProba(s)
}

// PredictWithProbaNodeViewContext is the traced degraded-path variant;
// the span carries view=node so a trace shows which head answered.
func (m *MVGNN) PredictWithProbaNodeViewContext(ctx context.Context, s Sample) (int, float64) {
	_, sp := trace.StartSpan(ctx, "gnn.forward")
	if sp != nil {
		sp.SetAttrInt("loop", int64(s.Meta.LoopID))
		sp.SetAttr("view", "node")
		defer sp.End()
	}
	return m.PredictWithProbaNodeView(s)
}

// classFrom reduces one logits row to (argmax class, P(class=1)).
func classFrom(logits *tensor.Matrix) (int, float64) {
	return nn.Predict(logits)[0], nn.Probabilities(logits).At(0, 1)
}

// quantized returns the lazily built float32 inference replica. The first
// call snapshots the current weights (see QuantizeF32); the model must be
// frozen by then. Safe only on a goroutine-private model/replica, like
// every other forward entry point.
func (m *MVGNN) quantized() *MVGNNF32 {
	if m.f32 == nil {
		m.f32 = m.QuantizeF32()
	}
	return m.f32
}

// PrepareF32 performs the one-time model quantization eagerly, so later
// Replicate calls share the quantized weights instead of each replica
// lazily re-quantizing on its first float32 prediction. Call it once on
// the frozen prototype before fanning out serving replicas.
func (m *MVGNN) PrepareF32() { m.quantized() }

// PredictWithProbaF32 is PredictWithProba on the float32 fast path: the
// quantized forward engine with cache-blocked kernels and fused
// activations. Labels and probabilities track the float64 path within the
// accuracy-parity gate's tolerance (`mvpar parity`), not bit-identically.
func (m *MVGNN) PredictWithProbaF32(s Sample) (int, float64) {
	return m.quantized().PredictWithProba(s)
}

// PredictWithProbaF32NodeView is the float32 degraded path (node view
// only), mirroring PredictWithProbaNodeView.
func (m *MVGNN) PredictWithProbaF32NodeView(s Sample) (int, float64) {
	return m.quantized().PredictWithProbaNodeView(s)
}

// PredictWithProbaF32Context is the traced float32 variant; the span
// carries precision=float32 so traces show which engine answered.
func (m *MVGNN) PredictWithProbaF32Context(ctx context.Context, s Sample) (int, float64) {
	_, sp := trace.StartSpan(ctx, "gnn.forward")
	if sp != nil {
		sp.SetAttrInt("loop", int64(s.Meta.LoopID))
		sp.SetAttr("precision", "float32")
		defer sp.End()
	}
	return m.PredictWithProbaF32(s)
}

// PredictWithProbaF32NodeViewContext is the traced float32 degraded-path
// variant.
func (m *MVGNN) PredictWithProbaF32NodeViewContext(ctx context.Context, s Sample) (int, float64) {
	_, sp := trace.StartSpan(ctx, "gnn.forward")
	if sp != nil {
		sp.SetAttrInt("loop", int64(s.Meta.LoopID))
		sp.SetAttr("view", "node")
		sp.SetAttr("precision", "float32")
		defer sp.End()
	}
	return m.PredictWithProbaF32NodeView(s)
}

// quantizedI8 returns the lazily built int8 inference replica, with the
// same freeze-before-first-use contract as quantized().
func (m *MVGNN) quantizedI8() *MVGNNI8 {
	if m.i8 == nil {
		m.i8 = m.QuantizeI8()
	}
	return m.i8
}

// PrepareI8 performs the one-time int8 model quantization eagerly, so
// later Replicate calls share the quantized weights instead of each
// replica lazily re-quantizing on its first int8 prediction. Call it once
// on the frozen prototype before fanning out serving replicas.
func (m *MVGNN) PrepareI8() { m.quantizedI8() }

// PredictWithProbaI8 is PredictWithProba on the int8 tier: per-channel
// quantized weights, int32 accumulators, dequantize-then-table-tanh
// epilogues. Labels and probabilities track the float64 path within the
// int8 parity gate's documented drift budget (`mvpar parity -precision
// int8`) — looser than float32's, and never bit-identical.
func (m *MVGNN) PredictWithProbaI8(s Sample) (int, float64) {
	return m.quantizedI8().PredictWithProba(s)
}

// PredictWithProbaI8NodeView is the int8 degraded path (node view only),
// mirroring PredictWithProbaNodeView.
func (m *MVGNN) PredictWithProbaI8NodeView(s Sample) (int, float64) {
	return m.quantizedI8().PredictWithProbaNodeView(s)
}

// PredictWithProbaI8Context is the traced int8 variant; the span carries
// precision=int8 so traces show which engine answered.
func (m *MVGNN) PredictWithProbaI8Context(ctx context.Context, s Sample) (int, float64) {
	_, sp := trace.StartSpan(ctx, "gnn.forward")
	if sp != nil {
		sp.SetAttrInt("loop", int64(s.Meta.LoopID))
		sp.SetAttr("precision", "int8")
		defer sp.End()
	}
	return m.PredictWithProbaI8(s)
}

// PredictWithProbaI8NodeViewContext is the traced int8 degraded-path
// variant.
func (m *MVGNN) PredictWithProbaI8NodeViewContext(ctx context.Context, s Sample) (int, float64) {
	_, sp := trace.StartSpan(ctx, "gnn.forward")
	if sp != nil {
		sp.SetAttrInt("loop", int64(s.Meta.LoopID))
		sp.SetAttr("view", "node")
		sp.SetAttr("precision", "int8")
		defer sp.End()
	}
	return m.PredictWithProbaI8NodeView(s)
}
