package gnn

import (
	"math"
	"math/rand"
	"testing"

	"mvpar/internal/tensor"
)

// TestSparseDenseBitIdentical pins the CSR kernel's determinism contract:
// training with sparse propagation (SpMM over ascending-column CSR rows)
// must produce bit-identical loss curves and final weights to the dense
// reference path (ForceDense), because both accumulate every output
// element over the same terms in the same order.
func TestSparseDenseBitIdentical(t *testing.T) {
	build := func(forceDense bool) ([]Sample, *MVGNN) {
		rng := rand.New(rand.NewSource(11))
		samples := makeSyntheticSamples(24, rng, 4)
		if forceDense {
			for _, s := range samples {
				s.Node.ForceDense()
				if s.Struct != s.Node {
					s.Struct.ForceDense()
				}
			}
		}
		return samples, NewMVGNN(4, 4, 21)
	}
	cfg := TrainConfig{
		Epochs:      4,
		LR:          0.003,
		Temperature: 0.5,
		ClipNorm:    5,
		BatchSize:   4,
		AuxWeight:   0.5,
		Seed:        9,
		Parallelism: 2, // also covers replica propagation over shared CSR
	}

	sparseSamples, sparseModel := build(false)
	denseSamples, denseModel := build(true)
	sparseCurve := sparseModel.Train(sparseSamples, cfg, nil)
	denseCurve := denseModel.Train(denseSamples, cfg, nil)

	if len(sparseCurve) != len(denseCurve) {
		t.Fatalf("curve lengths differ: %d vs %d", len(sparseCurve), len(denseCurve))
	}
	for i := range sparseCurve {
		if math.Float64bits(sparseCurve[i].Loss) != math.Float64bits(denseCurve[i].Loss) {
			t.Fatalf("epoch %d loss differs: sparse %v (%#x) vs dense %v (%#x)",
				i, sparseCurve[i].Loss, math.Float64bits(sparseCurve[i].Loss),
				denseCurve[i].Loss, math.Float64bits(denseCurve[i].Loss))
		}
		if sparseCurve[i].Acc != denseCurve[i].Acc {
			t.Fatalf("epoch %d accuracy differs: %v vs %v", i, sparseCurve[i].Acc, denseCurve[i].Acc)
		}
	}

	sp, dp := sparseModel.Params(), denseModel.Params()
	if len(sp) != len(dp) {
		t.Fatalf("param counts differ: %d vs %d", len(sp), len(dp))
	}
	for i := range sp {
		for j := range sp[i].Value.Data {
			sb := math.Float64bits(sp[i].Value.Data[j])
			db := math.Float64bits(dp[i].Value.Data[j])
			if sb != db {
				t.Fatalf("param %s[%d] differs: %v (%#x) vs %v (%#x)",
					sp[i].Name, j, sp[i].Value.Data[j], sb, dp[i].Value.Data[j], db)
			}
		}
	}
}

// TestPropagateForceDenseMatchesSparse is the kernel-level version of the
// bit-identity pin: one propagation through Â and Âᵀ, sparse vs dense.
func TestPropagateForceDenseMatchesSparse(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 7, 23} {
		g := lineGraph(n)
		if n > 4 {
			g.AddEdge(0, n-1, 0)
			g.AddEdge(2, n-2, 0)
		}
		eg := Encode(g, tensor.Randn(n, 5, 1, rng))
		dense := eg.WithFeatures(eg.X)
		dense.ForceDense()
		h := tensor.Randn(n, 6, 1, rng)
		a, b := eg.propagate(h), dense.propagate(h)
		at, bt := eg.propagateT(h), dense.propagateT(h)
		for i := range a.Data {
			if math.Float64bits(a.Data[i]) != math.Float64bits(b.Data[i]) {
				t.Fatalf("n=%d propagate[%d]: %v vs %v", n, i, a.Data[i], b.Data[i])
			}
			if math.Float64bits(at.Data[i]) != math.Float64bits(bt.Data[i]) {
				t.Fatalf("n=%d propagateT[%d]: %v vs %v", n, i, at.Data[i], bt.Data[i])
			}
		}
	}
}
