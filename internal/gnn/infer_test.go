package gnn

import (
	"context"
	"math/rand"
	"testing"
)

// TestPredictWithProbaMatchesSeparateCalls pins the single-forward
// contract: PredictWithProba must be bit-identical to calling Predict
// and PredictProba separately, in every predict mode, because the
// serving path substitutes the fused call for the pair.
func TestPredictWithProbaMatchesSeparateCalls(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	samples := makeSyntheticSamples(8, rng, 4)
	m := NewMVGNN(4, 4, 3)
	m.Train(samples, TrainConfig{Epochs: 3, LR: 0.005, Temperature: 0.5, ClipNorm: 5, BatchSize: 4, Seed: 3}, nil)
	for i, s := range samples {
		pred, proba := m.PredictWithProba(s)
		if want := m.Predict(s); pred != want {
			t.Fatalf("sample %d: fused class %d, Predict %d", i, pred, want)
		}
		if want := m.PredictProba(s); proba != want {
			t.Fatalf("sample %d: fused proba %v, PredictProba %v", i, proba, want)
		}
		npred, nproba := m.PredictWithProbaNodeView(s)
		if want := m.PredictNodeView(s); npred != want {
			t.Fatalf("sample %d: node-view fused class %d, PredictNodeView %d", i, npred, want)
		}
		if nproba < 0 || nproba > 1 {
			t.Fatalf("sample %d: node-view proba %v out of range", i, nproba)
		}
	}
}

// TestTracingDisabledAddsNoAllocs is the zero-overhead contract at the
// model layer: on an untraced context the traced prediction entry points
// must allocate exactly as much as the untraced ones — the span calls
// must be free.
func TestTracingDisabledAddsNoAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	s := makeSyntheticSamples(1, rng, 4)[0]
	m := NewMVGNN(4, 4, 5)
	ctx := context.Background()
	m.PredictWithProbaContext(ctx, s) // warm activation caches
	base := testing.AllocsPerRun(50, func() { m.PredictWithProba(s) })
	traced := testing.AllocsPerRun(50, func() { m.PredictWithProbaContext(ctx, s) })
	if traced > base {
		t.Fatalf("untraced-context prediction allocates %v/op, plain %v/op — tracing must be free when disabled", traced, base)
	}
}
