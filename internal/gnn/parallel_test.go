package gnn

import (
	"math/rand"
	"testing"

	"mvpar/internal/nn"
)

// trainPair trains two identically-seeded MVGNNs, one at Parallelism 1
// and one at Parallelism jobs, and returns both models and curves.
func trainPair(t *testing.T, jobs int) (m1, m2 *MVGNN, c1, c2 []EpochStats) {
	t.Helper()
	rng1 := rand.New(rand.NewSource(6))
	s1 := makeSyntheticSamples(24, rng1, 3)
	rng2 := rand.New(rand.NewSource(6))
	s2 := makeSyntheticSamples(24, rng2, 3)
	serial := TrainConfig{Epochs: 4, LR: 0.01, Temperature: 0.5, ClipNorm: 5, BatchSize: 8, Seed: 11, Parallelism: 1}
	parallel := serial
	parallel.Parallelism = jobs
	m1 = NewMVGNN(3, 3, 11)
	m2 = NewMVGNN(3, 3, 11)
	c1 = m1.Train(s1, serial, nil)
	c2 = m2.Train(s2, parallel, nil)
	return
}

// TestParallelTrainingBitIdentical is the training determinism guarantee:
// data-parallel shadow-gradient reduction must reproduce the serial loss
// curve AND the final weights bit for bit, for any worker count.
func TestParallelTrainingBitIdentical(t *testing.T) {
	for _, jobs := range []int{2, 4} {
		m1, m2, c1, c2 := trainPair(t, jobs)
		if len(c1) != len(c2) {
			t.Fatalf("jobs=%d: curve lengths %d vs %d", jobs, len(c1), len(c2))
		}
		for i := range c1 {
			if c1[i].Loss != c2[i].Loss || c1[i].Acc != c2[i].Acc {
				t.Fatalf("jobs=%d: epoch %d diverged: %+v vs %+v", jobs, i, c1[i], c2[i])
			}
		}
		p1, p2 := m1.Params(), m2.Params()
		for j := range p1 {
			for i := range p1[j].Value.Data {
				if p1[j].Value.Data[i] != p2[j].Value.Data[i] {
					t.Fatalf("jobs=%d: param %s element %d: %g vs %g",
						jobs, p1[j].Name, i, p1[j].Value.Data[i], p2[j].Value.Data[i])
				}
			}
		}
	}
}

// TestSingleViewParallelBitIdentical covers the same guarantee for the
// single-view trainer (the Static GNN baseline path).
func TestSingleViewParallelBitIdentical(t *testing.T) {
	rng1 := rand.New(rand.NewSource(5))
	s1 := makeSyntheticSamples(20, rng1, 4)
	rng2 := rand.New(rand.NewSource(5))
	s2 := makeSyntheticSamples(20, rng2, 4)
	serial := TrainConfig{Epochs: 4, LR: 0.005, Temperature: 0.5, ClipNorm: 5, BatchSize: 4, Seed: 9, Parallelism: 1}
	parallel := serial
	parallel.Parallelism = 3
	v1 := NewSingleView(4, true, 9)
	v2 := NewSingleView(4, true, 9)
	v1.Train(s1, serial, nil)
	v2.Train(s2, parallel, nil)
	p1, p2 := v1.Net.Params(), v2.Net.Params()
	for j := range p1 {
		for i := range p1[j].Value.Data {
			if p1[j].Value.Data[i] != p2[j].Value.Data[i] {
				t.Fatalf("param %s element %d: %g vs %g", p1[j].Name, i, p1[j].Value.Data[i], p2[j].Value.Data[i])
			}
		}
	}
}

// TestReplicateSharesWeightsIsolatesGrads checks the replica contract:
// identical predictions (shared weights), isolated gradient buffers.
func TestReplicateSharesWeightsIsolatesGrads(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	samples := makeSyntheticSamples(6, rng, 3)
	m := NewMVGNN(3, 3, 13)
	rep := m.Replicate()
	for _, s := range samples {
		if got, want := rep.Predict(s), m.Predict(s); got != want {
			t.Fatalf("replica prediction %d differs from master %d", got, want)
		}
	}
	// A backward pass through the replica must leave master grads at zero.
	loss := &nn.SoftmaxCrossEntropy{Temperature: 0.5}
	phase := &viewPhase{m: rep}
	phase.trainStep(samples[0], loss, 0)
	for _, p := range m.Params() {
		for _, g := range p.Grad.Data {
			if g != 0 {
				t.Fatalf("replica backward leaked into master grad %s", p.Name)
			}
		}
	}
	touched := false
	for _, p := range rep.Params() {
		for _, g := range p.Grad.Data {
			if g != 0 {
				touched = true
			}
		}
	}
	if !touched {
		t.Fatal("replica backward produced no gradient at all")
	}
}

// TestEvaluateParallelMatchesSerial checks the fan-out evaluator returns
// the exact serial accuracy at several worker counts.
func TestEvaluateParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	samples := makeSyntheticSamples(30, rng, 4)
	m := NewMVGNN(4, 4, 7)
	m.Train(samples, TrainConfig{Epochs: 6, LR: 0.005, Temperature: 0.5, ClipNorm: 5, BatchSize: 4, Seed: 7, Parallelism: 1}, nil)
	want := Evaluate(m.Predict, samples)
	for _, jobs := range []int{1, 2, 4, 100} {
		got := EvaluateParallel(func() func(Sample) int { return m.Replicate().Predict }, samples, jobs)
		if got != want {
			t.Fatalf("jobs=%d: EvaluateParallel = %v, Evaluate = %v", jobs, got, want)
		}
	}
}
