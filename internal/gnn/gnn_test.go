package gnn

import (
	"math"
	"math/rand"
	"testing"

	"mvpar/internal/graph"
	"mvpar/internal/nn"
	"mvpar/internal/tensor"
)

func lineGraph(n int) *graph.Directed {
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1, 0)
	}
	return g
}

func starGraph(n int) *graph.Directed {
	g := graph.New(n)
	for i := 1; i < n; i++ {
		g.AddEdge(i, 0, 0)
	}
	return g
}

func TestEncodeNormalization(t *testing.T) {
	g := lineGraph(3)
	x := tensor.New(3, 2)
	eg := Encode(g, x)
	// Node 0: self + node 1 -> weights 1/2 each. Node 1: self + 0 + 2 -> 1/3.
	a := eg.Adjacency()
	for v, wantDeg := range []int{2, 3, 2} {
		lo, hi := a.RowPtr[v], a.RowPtr[v+1]
		if hi-lo != wantDeg {
			t.Fatalf("node %d degree %d, want %d", v, hi-lo, wantDeg)
		}
		sum := 0.0
		for _, w := range a.Val[lo:hi] {
			sum += w
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("node %d weights sum %v", v, sum)
		}
		for k := lo + 1; k < hi; k++ {
			if a.ColIdx[k] <= a.ColIdx[k-1] {
				t.Fatalf("node %d columns not ascending: %v", v, a.ColIdx[lo:hi])
			}
		}
	}
}

func TestEncodeShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Encode(lineGraph(3), tensor.New(2, 2))
}

func TestPropagateTransposeConsistency(t *testing.T) {
	// <Âx, y> must equal <x, Âᵀy> for random vectors.
	rng := rand.New(rand.NewSource(1))
	g := lineGraph(6)
	g.AddEdge(0, 4, 0)
	eg := Encode(g, tensor.New(6, 1))
	x := tensor.Randn(6, 3, 1, rng)
	y := tensor.Randn(6, 3, 1, rng)
	ax := eg.propagate(x)
	aty := eg.propagateT(y)
	lhs, rhs := 0.0, 0.0
	for i := range ax.Data {
		lhs += ax.Data[i] * y.Data[i]
		rhs += x.Data[i] * aty.Data[i]
	}
	if math.Abs(lhs-rhs) > 1e-9 {
		t.Fatalf("adjoint mismatch: %v vs %v", lhs, rhs)
	}
}

func TestSortPoolOrderingAndPadding(t *testing.T) {
	sp := &sortPool{k: 4}
	z := tensor.FromRows([][]float64{
		{1, 0.2},
		{2, 0.9},
		{3, 0.5},
	})
	out := sp.forward(z)
	if out.Rows != 4 || out.Cols != 2 {
		t.Fatalf("shape %dx%d", out.Rows, out.Cols)
	}
	// Sorted by last channel descending: rows 1 (0.9), 2 (0.5), 0 (0.2).
	if out.At(0, 0) != 2 || out.At(1, 0) != 3 || out.At(2, 0) != 1 {
		t.Fatalf("sorted rows wrong: %v", out)
	}
	for _, v := range out.Row(3) {
		if v != 0 {
			t.Fatal("padding row not zero")
		}
	}
	// Backward routes gradients to original rows and drops padding.
	grad := tensor.FromRows([][]float64{{10, 10}, {20, 20}, {30, 30}, {40, 40}})
	dz := sp.backward(grad)
	if dz.At(1, 0) != 10 || dz.At(2, 0) != 20 || dz.At(0, 0) != 30 {
		t.Fatalf("backward routing wrong: %v", dz)
	}
}

func TestSortPoolTruncatesLargeGraphs(t *testing.T) {
	sp := &sortPool{k: 2}
	z := tensor.FromRows([][]float64{{0, 1}, {0, 3}, {0, 2}})
	out := sp.forward(z)
	if out.Rows != 2 || out.At(0, 1) != 3 || out.At(1, 1) != 2 {
		t.Fatalf("truncation wrong: %v", out)
	}
}

func TestDGCNNForwardShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cfg := DefaultConfig(5)
	d := NewDGCNN(cfg, rng)
	for _, n := range []int{1, 3, 16, 40} {
		g := Encode(lineGraph(n), tensor.Randn(n, 5, 1, rng))
		pen := d.PenultForward(g)
		if pen.Rows != 1 || pen.Cols != cfg.DenseDim {
			t.Fatalf("n=%d penult shape %dx%d", n, pen.Rows, pen.Cols)
		}
		logits := d.Forward(g)
		if logits.Rows != 1 || logits.Cols != 2 {
			t.Fatalf("n=%d logits shape %dx%d", n, logits.Rows, logits.Cols)
		}
	}
}

// Full-model gradient check: numerical vs analytic gradient for a few
// parameters of every layer type in the DGCNN.
func TestDGCNNGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cfg := Config{
		InputDim:     3,
		ConvChannels: []int{4, 1},
		SortK:        4,
		Conv1Filters: 3,
		Conv2Filters: 4,
		DenseDim:     5,
		NumClasses:   2,
		Seed:         3,
	}
	d := NewDGCNN(cfg, rng)
	g := Encode(lineGraph(6), tensor.Randn(6, 3, 1, rng))
	loss := &nn.SoftmaxCrossEntropy{Temperature: 1}
	label := []int{1}

	lossAt := func() float64 {
		l, _ := loss.Loss(d.Forward(g), label)
		return l
	}
	nn.ZeroGrads(d.Params())
	logits := d.Forward(g)
	_, grad := loss.Loss(logits, label)
	d.Backward(grad)

	const eps = 1e-5
	for _, p := range d.Params() {
		// Probe a few entries of each parameter.
		probes := []int{0, len(p.Value.Data) / 2, len(p.Value.Data) - 1}
		for _, i := range probes {
			orig := p.Value.Data[i]
			p.Value.Data[i] = orig + eps
			lp := lossAt()
			p.Value.Data[i] = orig - eps
			lm := lossAt()
			p.Value.Data[i] = orig
			want := (lp - lm) / (2 * eps)
			got := p.Grad.Data[i]
			if math.Abs(got-want) > 1e-4*(1+math.Abs(want)) {
				t.Fatalf("param %s[%d]: grad %v, numeric %v", p.Name, i, got, want)
			}
		}
	}
}

// makeSyntheticSamples builds a star-vs-chain classification task where
// only the structure differs. Row-normalized propagation of constant
// features is degree-invariant, so the features carry the node degree —
// exactly what real encodings (walk distributions, CU embeddings) provide.
func makeSyntheticSamples(n int, rng *rand.Rand, featDim int) []Sample {
	var samples []Sample
	for i := 0; i < n; i++ {
		size := 5 + rng.Intn(6)
		var g *graph.Directed
		label := i % 2
		if label == 0 {
			g = lineGraph(size)
		} else {
			g = starGraph(size)
		}
		x := tensor.New(size, featDim)
		for r := 0; r < size; r++ {
			x.Set(r, 0, 1)
			x.Set(r, 1, float64(len(g.Neighbors(r))))
		}
		eg := Encode(g, x)
		samples = append(samples, Sample{Node: eg, Struct: eg, Label: label})
	}
	return samples
}

func TestMVGNNLearnsStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	samples := makeSyntheticSamples(60, rng, 4)
	m := NewMVGNN(4, 4, 7)
	cfg := TrainConfig{Epochs: 25, LR: 0.005, Temperature: 0.5, ClipNorm: 5, BatchSize: 4, Seed: 7}
	curve := m.Train(samples, cfg, nil)
	// Staged training: view phase (Epochs) plus fusion phase (Epochs/4+1).
	if len(curve) != cfg.Epochs+cfg.Epochs/4+1 {
		t.Fatalf("curve length %d", len(curve))
	}
	if curve[len(curve)-1].Loss >= curve[0].Loss {
		t.Fatalf("loss did not decrease: %v -> %v", curve[0].Loss, curve[len(curve)-1].Loss)
	}
	acc := Evaluate(m.Predict, samples)
	if acc < 0.9 {
		t.Fatalf("train accuracy = %v, want >= 0.9 on separable task", acc)
	}
}

func TestSingleViewLearnsStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	samples := makeSyntheticSamples(60, rng, 4)
	v := NewSingleView(4, true, 9)
	v.Train(samples, TrainConfig{Epochs: 25, LR: 0.005, Temperature: 0.5, ClipNorm: 5, Seed: 9}, nil)
	acc := Evaluate(v.Predict, samples)
	if acc < 0.85 {
		t.Fatalf("single-view accuracy = %v", acc)
	}
}

func TestTrainingDeterministic(t *testing.T) {
	rng1 := rand.New(rand.NewSource(6))
	s1 := makeSyntheticSamples(20, rng1, 3)
	rng2 := rand.New(rand.NewSource(6))
	s2 := makeSyntheticSamples(20, rng2, 3)
	cfg := TrainConfig{Epochs: 5, LR: 0.01, Temperature: 0.5, ClipNorm: 5, Seed: 11}
	m1 := NewMVGNN(3, 3, 11)
	m2 := NewMVGNN(3, 3, 11)
	c1 := m1.Train(s1, cfg, nil)
	c2 := m2.Train(s2, cfg, nil)
	for i := range c1 {
		if c1[i].Loss != c2[i].Loss || c1[i].Acc != c2[i].Acc {
			t.Fatalf("epoch %d diverged: %+v vs %+v", i, c1[i], c2[i])
		}
	}
}

func TestPredictProbaRange(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	samples := makeSyntheticSamples(4, rng, 3)
	m := NewMVGNN(3, 3, 13)
	for _, s := range samples {
		p := m.PredictProba(s)
		if p < 0 || p > 1 || math.IsNaN(p) {
			t.Fatalf("proba = %v", p)
		}
	}
}

func TestPaperConfigShapes(t *testing.T) {
	cfg := PaperConfig(200)
	rng := rand.New(rand.NewSource(1))
	d := NewDGCNN(cfg, rng)
	g := Encode(lineGraph(50), tensor.Randn(50, 200, 0.1, rng))
	pen := d.PenultForward(g)
	if pen.Rows != 1 || pen.Cols != cfg.DenseDim {
		t.Fatalf("paper-config penult shape %dx%d", pen.Rows, pen.Cols)
	}
	logits := d.Forward(g)
	if logits.Cols != 2 {
		t.Fatalf("logits cols = %d", logits.Cols)
	}
}
