package gnn

import (
	"math"

	"mvpar/internal/nn"
	"mvpar/internal/tensor"
	"mvpar/internal/tensor/f32"
)

// This file is the float32 inference engine: a one-time quantization of a
// trained MVGNN's parameters into float32 (dense-layer weights stored
// pre-transposed so the single-row matvecs read contiguously), plus a
// forward-only mirror of the DGCNN/MVGNN pipeline built on the
// tensor/f32 kernels — fused matmul+tanh graph convolutions, fused
// dense+bias+tanh readout, table-driven tanh. Training never touches this
// path; the float64 forward remains the bit-identity reference, and
// float32 correctness is enforced by the accuracy-parity harness
// (internal/eval, `mvpar parity`) rather than by bitwise contracts.

// conv1dF32 is a quantized nn.Conv1D (weights + geometry, no gradients).
type conv1dF32 struct {
	inCh, outCh, kernel, stride int
	w                           *f32.Matrix // outCh x inCh*kernel
	b                           []float32
}

func quantizeConv1D(c *nn.Conv1D) conv1dF32 {
	q := conv1dF32{
		inCh:   c.InChannels,
		outCh:  c.OutChannels,
		kernel: c.KernelSize,
		stride: c.Stride,
		w:      f32.FromMatrix(c.W.Value),
		b:      make([]float32, c.B.Value.Cols),
	}
	for i, v := range c.B.Value.Data {
		q.b[i] = float32(v)
	}
	return q
}

func (c *conv1dF32) outLen(l int) int {
	if l < c.kernel {
		return 0
	}
	return (l-c.kernel)/c.stride + 1
}

// forwardInto mirrors nn.Conv1D.ForwardInto in float32 with the bias
// folded into the accumulator initialization and the per-window reduction
// routed through the unrolled f32.Dot kernel. The DGCNN's first readout
// conv has a single input channel with kernel == stride (each output
// position summarizes one sort-pooled node), so it reduces to one long
// dot product per (filter, position) — the single-channel fast path.
//
// The multi-channel path gathers each window's inCh x kernel patch into
// patch (caller-owned scratch, grown as needed and returned) so every
// output element is a single long contiguous dot against a weight row,
// instead of inCh short per-channel dots whose call overhead would
// dominate at the second conv's kernel size.
func (c *conv1dF32) forwardInto(x, out *f32.Matrix, patch []float32) []float32 {
	outLen := out.Cols
	if c.inCh == 1 {
		xr := x.Row(0)
		for f := 0; f < c.outCh; f++ {
			w := c.w.Row(f)
			bias := c.b[f]
			outRow := out.Row(f)
			for t := 0; t < outLen; t++ {
				start := t * c.stride
				outRow[t] = bias + f32.Dot(w, xr[start:start+c.kernel])
			}
		}
		return patch
	}
	wk := c.inCh * c.kernel
	if cap(patch) < wk {
		patch = make([]float32, wk)
	}
	patch = patch[:wk]
	for t := 0; t < outLen; t++ {
		start := t * c.stride
		for ch := 0; ch < c.inCh; ch++ {
			copy(patch[ch*c.kernel:(ch+1)*c.kernel], x.Row(ch)[start:start+c.kernel])
		}
		for f := 0; f < c.outCh; f++ {
			out.Data[f*out.Cols+t] = c.b[f] + f32.Dot(c.w.Row(f), patch)
		}
	}
	return patch
}

// denseF32 is a quantized nn.Dense with the weight stored transposed
// (out x in) so the inference matvec reads both operands contiguously.
type denseF32 struct {
	wt *f32.Matrix
	b  *f32.Matrix // 1 x out
}

func quantizeDense(d *nn.Dense) denseF32 {
	return denseF32{wt: f32.TransposedFromMatrix(d.W.Value), b: f32.FromMatrix(d.B.Value)}
}

// dgcnnWeightsF32 is the read-only quantized parameter set of one view,
// shared by every MVGNNF32 replica.
type dgcnnWeightsF32 struct {
	cfg          Config
	totalCh      int
	convW        []*f32.Matrix // graph-conv weights, in x out
	conv1, conv2 conv1dF32
	poolK, poolS int
	dense, head  denseF32
}

func quantizeDGCNN(d *DGCNN) *dgcnnWeightsF32 {
	w := &dgcnnWeightsF32{
		cfg:     d.Cfg,
		totalCh: d.totalCh,
		conv1:   quantizeConv1D(d.conv1),
		conv2:   quantizeConv1D(d.conv2),
		poolK:   d.pool1.KernelSize,
		poolS:   d.pool1.Stride,
		dense:   quantizeDense(d.dense),
		head:    quantizeDense(d.head),
	}
	for _, c := range d.convs {
		w.convW = append(w.convW, f32.FromMatrix(c.w.Value))
	}
	return w
}

// dgcnnF32 is the per-replica forward state of one quantized view: the
// shared weights plus private scratch (sort buffers, CSR value buffer,
// flatten headers). Matrices come from the owning MVGNNF32's arena.
type dgcnnF32 struct {
	w     *dgcnnWeightsF32
	arena *f32.Arena

	keys         []float64
	idx, tmp     []int
	aVals        []float32
	patch        []float32
	sp           f32.Sparse
	flat1, flat2 f32.Matrix
}

// penultForward mirrors DGCNN.PenultForward: graph-conv stack with
// channel concat, SortPooling, Conv1D/MaxPool/Conv1D, dense+tanh. The
// returned 1 x DenseDim vector lives in the replica arena (valid until
// the next predict).
func (d *dgcnnF32) penultForward(g *EncodedGraph) *f32.Matrix {
	w := d.w
	// Per-sample quantization: node features and adjacency values.
	h := d.arena.Get(g.X.Rows, g.X.Cols)
	f32.ConvertInto(g.X, h)
	d.aVals = f32.LoadSparse(&d.sp, g.Adjacency(), d.aVals)

	cat := d.arena.Get(g.N, w.totalCh)
	off := 0
	for _, wc := range w.convW {
		m := d.arena.Get(g.N, h.Cols)
		f32.SpMMInto(&d.sp, h, m)
		z := d.arena.Get(g.N, wc.Cols)
		f32.MatMulTanhInto(m, wc, z)
		for r := 0; r < g.N; r++ {
			copy(cat.Row(r)[off:off+z.Cols], z.Row(r))
		}
		off += z.Cols
		h = z
	}

	// SortPooling: order nodes by the sort channel (last column of cat)
	// descending, keep k rows, zero-pad small graphs. The argsort runs on
	// float64 keys so the ordering machinery is shared with the f64 path.
	d.keys = growFloats(d.keys, g.N)
	d.idx = growInts(d.idx, g.N)
	d.tmp = growInts(d.tmp, g.N)
	for i := 0; i < g.N; i++ {
		d.keys[i] = -float64(cat.At(i, w.totalCh-1))
	}
	tensor.ArgsortInto(d.keys, d.idx, d.tmp)
	pooled := d.arena.Get(w.cfg.SortK, w.totalCh) // zeroed: rows past N stay padding
	for i := 0; i < w.cfg.SortK && i < g.N; i++ {
		copy(pooled.Row(i), cat.Row(d.idx[i]))
	}

	d.flat1 = f32.Matrix{Rows: 1, Cols: pooled.Rows * pooled.Cols, Data: pooled.Data}
	c1 := d.arena.Get(w.conv1.outCh, w.conv1.outLen(d.flat1.Cols))
	d.patch = w.conv1.forwardInto(&d.flat1, c1, d.patch)
	p1 := d.arena.Get(c1.Rows, poolOutLen(c1.Cols, w.poolK, w.poolS))
	maxPool1DF32(c1, p1, w.poolK, w.poolS)
	c2 := d.arena.Get(w.conv2.outCh, w.conv2.outLen(p1.Cols))
	d.patch = w.conv2.forwardInto(p1, c2, d.patch)
	d.flat2 = f32.Matrix{Rows: 1, Cols: c2.Rows * c2.Cols, Data: c2.Data}
	pen := d.arena.Get(1, w.cfg.DenseDim)
	f32.DenseTanhForwardInto(&d.flat2, w.dense.wt, w.dense.b, pen)
	return pen
}

// logits applies the view's own classification head.
func (d *dgcnnF32) logits(pen *f32.Matrix) *f32.Matrix {
	out := d.arena.Get(1, d.w.cfg.NumClasses)
	f32.DenseForwardInto(pen, d.w.head.wt, d.w.head.b, out)
	return out
}

func poolOutLen(l, kernel, stride int) int {
	if l < kernel {
		return 0
	}
	return (l-kernel)/stride + 1
}

func maxPool1DF32(x, out *f32.Matrix, kernel, stride int) {
	for ch := 0; ch < x.Rows; ch++ {
		xr := x.Row(ch)
		outRow := out.Row(ch)
		for t := range outRow {
			start := t * stride
			bv := xr[start]
			for k := 1; k < kernel; k++ {
				if xr[start+k] > bv {
					bv = xr[start+k]
				}
			}
			outRow[t] = bv
		}
	}
}

// mvgnnWeightsF32 is the shared quantized parameter set of the full
// multi-view model.
type mvgnnWeightsF32 struct {
	classes     int
	predictMode int
	node, strct *dgcnnWeightsF32
	out         denseF32
}

// MVGNNF32 is a forward-only float32 replica of a trained MVGNN. Replicas
// share the quantized weights (read-only) and own their scratch, so — like
// float64 replicas — each must stay goroutine-private while the set of
// replicas serves concurrently.
type MVGNNF32 struct {
	w           *mvgnnWeightsF32
	arena       *f32.Arena
	node, strct dgcnnF32
}

func newMVGNNF32(w *mvgnnWeightsF32) *MVGNNF32 {
	arena := f32.NewArena()
	return &MVGNNF32{
		w:     w,
		arena: arena,
		node:  dgcnnF32{w: w.node, arena: arena},
		strct: dgcnnF32{w: w.strct, arena: arena},
	}
}

// QuantizeF32 snapshots the model's parameters into a float32 inference
// replica. The snapshot is one-time: later optimizer steps or parameter
// reloads on m are NOT reflected — quantize after training (or after
// LoadParams), which is when core.Classifier builds its handles.
func (m *MVGNN) QuantizeF32() *MVGNNF32 {
	return newMVGNNF32(&mvgnnWeightsF32{
		classes:     m.NodeView.Cfg.NumClasses,
		predictMode: m.predictMode,
		node:        quantizeDGCNN(m.NodeView),
		strct:       quantizeDGCNN(m.StructView),
		out:         quantizeDense(m.out),
	})
}

// Replicate returns another replica sharing q's quantized weights but
// owning private scratch, for concurrent serving.
func (q *MVGNNF32) Replicate() *MVGNNF32 { return newMVGNNF32(q.w) }

// PredictWithProba is the float32 mirror of MVGNN.PredictWithProba: one
// forward pass of the head selected during training, returning the
// predicted class and P(class=1).
func (q *MVGNNF32) PredictWithProba(s Sample) (int, float64) {
	switch q.w.predictMode {
	case 1:
		return q.predictView(&q.node, s.Node)
	case 2:
		return q.predictView(&q.strct, s.Struct)
	}
	q.arena.Reset()
	hn := q.node.penultForward(s.Node)
	hs := q.strct.penultForward(s.Struct)
	ln := q.node.logits(hn)
	ls := q.strct.logits(hs)
	cat := q.arena.Get(1, ln.Cols+ls.Cols)
	copy(cat.Data[:ln.Cols], ln.Row(0))
	copy(cat.Data[ln.Cols:], ls.Row(0))
	f32.TanhInto(cat)
	fused := q.arena.Get(1, q.w.classes)
	f32.DenseForwardInto(cat, q.w.out.wt, q.w.out.b, fused)
	return classFromF32(fused)
}

// PredictWithProbaNodeView is the float32 degraded path: node view only.
func (q *MVGNNF32) PredictWithProbaNodeView(s Sample) (int, float64) {
	return q.predictView(&q.node, s.Node)
}

func (q *MVGNNF32) predictView(d *dgcnnF32, g *EncodedGraph) (int, float64) {
	q.arena.Reset()
	return classFromF32(d.logits(d.penultForward(g)))
}

// classFromF32 mirrors classFrom: argmax with first-wins ties, and
// P(class=1) via a float64 softmax over the (two or three) logits — the
// exp is a rounding-sensitive step, and at this size full precision costs
// nothing.
func classFromF32(logits *f32.Matrix) (int, float64) {
	row := logits.Row(0)
	best := 0
	maxv := math.Inf(-1)
	for j, v := range row {
		if v > row[best] {
			best = j
		}
		if float64(v) > maxv {
			maxv = float64(v)
		}
	}
	sum, p1 := 0.0, 0.0
	for j, v := range row {
		e := math.Exp(float64(v) - maxv)
		sum += e
		if j == 1 {
			p1 = e
		}
	}
	return best, p1 / sum
}
