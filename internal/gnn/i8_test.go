package gnn

import (
	"context"
	"math"
	"testing"
)

// int8 unit-level drift budget on the deterministic trained fixture: the
// quantized tier may flip a small number of near-boundary samples and its
// probabilities drift more than float32's, but both stay bounded. These
// are tighter than the corpus-level `mvpar parity -precision int8` budget
// because the fixture is tiny and fixed-seed.
const (
	i8ProbaTol = 0.08 // absolute P(class=1) drift vs float64
	i8MaxFlips = 2    // label flips allowed across the 24-sample fixture
)

// TestPredictWithProbaI8Parity is the unit-level drift gate for the int8
// tier: across the seed fixture the fused and node-view paths must stay
// within the probability tolerance, with at most i8MaxFlips label flips
// per path (flips must co-occur with near-0.5 probabilities).
func TestPredictWithProbaI8Parity(t *testing.T) {
	m, samples := trainedParityModel(t)
	fusedFlips, nodeFlips := 0, 0
	for i, s := range samples {
		c64, p64 := m.PredictWithProba(s)
		c8, p8 := m.PredictWithProbaI8(s)
		if d := math.Abs(p8 - p64); d > i8ProbaTol {
			t.Fatalf("sample %d: int8 proba %v drifts from float64 %v by %v", i, p8, p64, d)
		}
		if c8 != c64 {
			fusedFlips++
			if math.Abs(p64-0.5) > i8ProbaTol {
				t.Fatalf("sample %d: int8 flipped a confident label: int8 (%d, %v) vs float64 (%d, %v)", i, c8, p8, c64, p64)
			}
		}
		n64c, n64p := m.PredictWithProbaNodeView(s)
		n8c, n8p := m.PredictWithProbaI8NodeView(s)
		if d := math.Abs(n8p - n64p); d > i8ProbaTol {
			t.Fatalf("sample %d: node-view int8 proba drift %v", i, d)
		}
		if n8c != n64c {
			nodeFlips++
			if math.Abs(n64p-0.5) > i8ProbaTol {
				t.Fatalf("sample %d: node-view int8 flipped a confident label", i)
			}
		}
	}
	if fusedFlips > i8MaxFlips || nodeFlips > i8MaxFlips {
		t.Fatalf("int8 flips %d (fused) / %d (node) exceed budget %d", fusedFlips, nodeFlips, i8MaxFlips)
	}
}

// TestPredictWithProbaI8PredictModes exercises head selection: the int8
// engine must follow the same predictMode as the float64 path, within the
// same drift budget.
func TestPredictWithProbaI8PredictModes(t *testing.T) {
	m, samples := trainedParityModel(t)
	for _, mode := range []int{0, 1, 2} {
		m.predictMode = mode
		m.i8 = nil // re-quantize with the new mode
		flips := 0
		for i, s := range samples {
			c64, p64 := m.PredictWithProba(s)
			c8, p8 := m.PredictWithProbaI8(s)
			if math.Abs(p8-p64) > i8ProbaTol {
				t.Fatalf("mode %d sample %d: int8 (%d, %v) drifts from float64 (%d, %v)", mode, i, c8, p8, c64, p64)
			}
			if c8 != c64 {
				flips++
			}
		}
		if flips > i8MaxFlips {
			t.Fatalf("mode %d: %d flips exceed budget %d", mode, flips, i8MaxFlips)
		}
	}
}

// TestMVGNNI8ReplicateSharesWeights pins the replica contract: replicas
// share the quantized weights (no re-quantization) but own both scratch
// arenas, and agree exactly with the source replica (the integer forward
// is deterministic).
func TestMVGNNI8ReplicateSharesWeights(t *testing.T) {
	m, samples := trainedParityModel(t)
	q := m.QuantizeI8()
	rep := q.Replicate()
	if rep.w != q.w {
		t.Fatal("replica does not share quantized weights")
	}
	if rep.arena == q.arena || rep.iarena == q.iarena {
		t.Fatal("replica shares a scratch arena")
	}
	for i, s := range samples {
		c1, p1 := q.PredictWithProba(s)
		c2, p2 := rep.PredictWithProba(s)
		if c1 != c2 || p1 != p2 {
			t.Fatalf("sample %d: replica (%d, %v) differs from source (%d, %v)", i, c2, p2, c1, p1)
		}
	}
}

// TestMVGNNReplicateSharesI8 pins the serving fan-out path: PrepareI8 on
// the prototype makes MVGNN.Replicate hand replicas a weight-sharing int8
// mirror instead of each replica re-quantizing lazily.
func TestMVGNNReplicateSharesI8(t *testing.T) {
	m, samples := trainedParityModel(t)
	m.PrepareI8()
	r := m.Replicate()
	if r.i8 == nil {
		t.Fatal("replica of a prepared prototype has no int8 mirror")
	}
	if r.i8.w != m.i8.w {
		t.Fatal("replica int8 mirror does not share quantized weights")
	}
	s := samples[0]
	c1, p1 := m.PredictWithProbaI8(s)
	c2, p2 := r.PredictWithProbaI8(s)
	if c1 != c2 || p1 != p2 {
		t.Fatalf("replica int8 predict (%d, %v) differs from prototype (%d, %v)", c2, p2, c1, p1)
	}
}

// TestPredictWithProbaI8SteadyStateAllocFree: after warm-up, the int8
// forward must allocate nothing per prediction — the property
// BenchmarkForwardI8's allocs/op gate defends in CI.
func TestPredictWithProbaI8SteadyStateAllocFree(t *testing.T) {
	m, samples := trainedParityModel(t)
	s := samples[0]
	for i := 0; i < 3; i++ {
		m.PredictWithProbaI8(s)
	}
	if n := testing.AllocsPerRun(20, func() { m.PredictWithProbaI8(s) }); n != 0 {
		t.Fatalf("int8 predict allocates %v/op in steady state, want 0", n)
	}
	ctx := context.Background()
	m.PredictWithProbaI8Context(ctx, s)
	if n := testing.AllocsPerRun(20, func() { m.PredictWithProbaI8Context(ctx, s) }); n != 0 {
		t.Fatalf("traced int8 predict allocates %v/op on untraced context, want 0", n)
	}
}

// TestQuantizeI8IsSnapshot: quantization copies the weights; mutating the
// float64 model afterwards must not leak into an existing mirror.
func TestQuantizeI8IsSnapshot(t *testing.T) {
	m, samples := trainedParityModel(t)
	s := samples[0]
	q := m.QuantizeI8()
	c1, p1 := q.PredictWithProba(s)
	for _, p := range m.Params() {
		for i := range p.Value.Data {
			p.Value.Data[i] += 10
		}
	}
	c2, p2 := q.PredictWithProba(s)
	if c1 != c2 || p1 != p2 {
		t.Fatalf("quantized mirror changed after mutating float64 weights: (%d, %v) -> (%d, %v)", c1, p1, c2, p2)
	}
}
