package gnn

import (
	"math"
	"math/rand"

	"mvpar/internal/nn"
	"mvpar/internal/tensor"
)

// This file implements the unsupervised GraphSAGE objective the paper
// adopts (§III-E, citing Hamilton et al.): node representations from the
// graph convolution stack are trained so that connected nodes embed
// close together and random node pairs embed apart,
//
//	L = -log σ(z_u · z_v) - Σ_negatives log σ(-z_u · z_n),
//
// used here as an optional pretraining phase for each view's conv stack
// before supervised classification (TrainConfig.PretrainEpochs).

// PretrainStep runs one unsupervised step on a single graph: it samples
// up to maxPairs edges as positives, one random negative per positive,
// computes the GraphSAGE loss over the conv-stack node embeddings, and
// accumulates gradients on the conv weights. It returns the mean loss
// (zero for graphs with no edges).
func (d *DGCNN) PretrainStep(g *EncodedGraph, maxPairs int, rng *rand.Rand) float64 {
	if g.N < 2 {
		return 0
	}
	z := d.forwardConvs(g)
	dz := tensor.New(z.Rows, z.Cols)

	type pair struct{ u, v int }
	var pos []pair
	a := g.a
	for u := 0; u < g.N; u++ {
		for _, v := range a.ColIdx[a.RowPtr[u]:a.RowPtr[u+1]] {
			if v != u {
				pos = append(pos, pair{u, v})
			}
		}
	}
	if len(pos) == 0 {
		return 0
	}
	rng.Shuffle(len(pos), func(i, j int) { pos[i], pos[j] = pos[j], pos[i] })
	if len(pos) > maxPairs {
		pos = pos[:maxPairs]
	}

	total := 0.0
	count := 0
	accumulate := func(u, v int, label float64) {
		zu, zv := z.Row(u), z.Row(v)
		dot := 0.0
		for i := range zu {
			dot += zu[i] * zv[i]
		}
		p := 1 / (1 + math.Exp(-dot))
		if label == 1 {
			total += -math.Log(math.Max(p, 1e-12))
		} else {
			total += -math.Log(math.Max(1-p, 1e-12))
		}
		count++
		gs := p - label // dL/d(dot)
		du, dv := dz.Row(u), dz.Row(v)
		for i := range zu {
			du[i] += gs * zv[i]
			dv[i] += gs * zu[i]
		}
	}
	for _, pr := range pos {
		accumulate(pr.u, pr.v, 1)
		// One uniform negative per positive; resample once on collision.
		n := rng.Intn(g.N)
		if n == pr.u || n == pr.v {
			n = (n + 1) % g.N
		}
		accumulate(pr.u, n, 0)
	}
	inv := 1 / float64(count)
	dz.ScaleInPlace(inv)
	d.backwardConvs(dz)
	return total * inv
}

// convParams returns the conv-stack weights only (what pretraining tunes).
func (d *DGCNN) convParams() []*nn.Param {
	var ps []*nn.Param
	for _, c := range d.convs {
		ps = append(ps, c.w)
	}
	return ps
}

// Pretrain runs the unsupervised objective for the given number of epochs
// over the sample graphs and returns the per-epoch mean loss.
func (d *DGCNN) Pretrain(graphs []*EncodedGraph, epochs int, lr float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	opt := nn.NewAdam(lr)
	params := d.convParams()
	var losses []float64
	order := rng.Perm(len(graphs))
	for epoch := 0; epoch < epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		total := 0.0
		for _, i := range order {
			total += d.PretrainStep(graphs[i], 32, rng)
			nn.ClipGrads(params, 5)
			opt.Step(params)
		}
		losses = append(losses, total/float64(max(1, len(graphs))))
	}
	return losses
}
