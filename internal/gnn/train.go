package gnn

import (
	"context"
	"math/rand"

	"mvpar/internal/nn"
	"mvpar/internal/obs"
)

// TrainConfig controls supervised training of the graph models.
type TrainConfig struct {
	Epochs      int
	LR          float64
	Temperature float64 // softmax temperature (the paper trains at 0.5)
	ClipNorm    float64
	BatchSize   int     // gradient-accumulation batch (paper uses 32); 0 = 1
	AuxWeight   float64 // deep-supervision weight on each view's own head (MV-GNN only)
	// PretrainEpochs, when positive, runs the unsupervised GraphSAGE
	// objective (§III-E) on each view's conv stack before supervised
	// training.
	PretrainEpochs int
	Seed           int64
	// Ctx, when non-nil, is checked at every batch boundary; a done
	// context stops training early and the curve so far is returned.
	// Callers that need an error must inspect Ctx.Err() afterwards.
	Ctx context.Context
}

// DefaultTrainConfig is sized so the built-in experiments train in
// seconds while preserving the paper's loss (softmax at temperature 0.5).
var DefaultTrainConfig = TrainConfig{
	Epochs:      30,
	LR:          0.003,
	Temperature: 0.5,
	ClipNorm:    5,
	BatchSize:   8,
	AuxWeight:   0.5,
	Seed:        1,
}

// EpochStats records one epoch of training for figure-7 style curves.
type EpochStats struct {
	Epoch int
	Loss  float64
	Acc   float64
}

// classifier abstracts MVGNN and single-view DGCNN training. trainStep
// runs forward, loss and backward for one sample and returns the loss and
// the fused prediction.
type classifier interface {
	trainStep(s Sample, loss *nn.SoftmaxCrossEntropy, aux float64) (float64, int)
	params() []*nn.Param
	// clip applies gradient clipping at batch boundaries; groups that
	// train independently (the two views) clip independently so neither
	// starves the other of its gradient budget.
	clip(norm float64)
}

// SingleView wraps one DGCNN over either the node or the structural
// encoding of each sample — the "Static GNN" baseline and the per-view
// probes of figure 8.
type SingleView struct {
	Net       *DGCNN
	UseStruct bool
}

// NewSingleView builds a single-view classifier.
func NewSingleView(inputDim int, useStruct bool, seed int64) *SingleView {
	rng := rand.New(rand.NewSource(seed))
	return &SingleView{Net: NewDGCNN(DefaultConfig(inputDim), rng), UseStruct: useStruct}
}

func (v *SingleView) pick(s Sample) *EncodedGraph {
	if v.UseStruct {
		return s.Struct
	}
	return s.Node
}

func (v *SingleView) trainStep(s Sample, loss *nn.SoftmaxCrossEntropy, aux float64) (float64, int) {
	logits := v.Net.Forward(v.pick(s))
	l, grad := loss.Loss(logits, []int{s.Label})
	v.Net.Backward(grad)
	return l, nn.Predict(logits)[0]
}

func (v *SingleView) params() []*nn.Param { return v.Net.Params() }

func (v *SingleView) clip(norm float64) { nn.ClipGrads(v.Net.Params(), norm) }

// Predict returns the predicted class for one sample.
func (v *SingleView) Predict(s Sample) int {
	return nn.Predict(v.Net.Forward(v.pick(s)))[0]
}

// Train runs supervised training of the multi-view model and returns the
// per-epoch curve (figure 7). hook, if non-nil, observes each epoch.
//
// Training is staged, the standard schedule for late-fusion multi-view
// models: first both views learn with their own classification heads
// (deep supervision), then the view bodies are frozen and the fusion head
// is fitted on their outputs — so the fused model starts from the best
// single view and can only add structural evidence on top.
func (m *MVGNN) Train(samples []Sample, cfg TrainConfig, hook func(EpochStats)) []EpochStats {
	defer obs.Start("gnn.train").End()
	if cfg.Epochs <= 0 {
		cfg = DefaultTrainConfig
	}
	// Carve out an internal validation slice (~15%) the optimizer never
	// sees; it decides which head (fused / node / struct) the model uses
	// at inference, so the multi-view model cannot silently regress below
	// its own views on unseen data.
	fit, sel := samples, samples
	if len(samples) >= 40 {
		rng := rand.New(rand.NewSource(cfg.Seed ^ 0x51ED))
		idx := rng.Perm(len(samples))
		cut := len(samples) - len(samples)*15/100
		fit = make([]Sample, 0, cut)
		sel = make([]Sample, 0, len(samples)-cut)
		for _, i := range idx[:cut] {
			fit = append(fit, samples[i])
		}
		for _, i := range idx[cut:] {
			sel = append(sel, samples[i])
		}
	}
	samples = fit
	if cfg.PretrainEpochs > 0 {
		pretrainSpan := obs.Start("gnn.pretrain")
		nodeGraphs := make([]*EncodedGraph, len(samples))
		structGraphs := make([]*EncodedGraph, len(samples))
		for i, s := range samples {
			nodeGraphs[i] = s.Node
			structGraphs[i] = s.Struct
		}
		m.NodeView.Pretrain(nodeGraphs, cfg.PretrainEpochs, cfg.LR, cfg.Seed)
		m.StructView.Pretrain(structGraphs, cfg.PretrainEpochs, cfg.LR, cfg.Seed+1)
		pretrainSpan.End()
	}
	viewCfg := cfg
	curve := trainLoop(&viewPhase{m: m}, samples, viewCfg, hook)

	fuseCfg := cfg
	fuseCfg.Epochs = cfg.Epochs/4 + 1
	curve = append(curve, trainLoop(&fusePhase{m: m}, samples, fuseCfg, hook)...)

	m.predictMode = 0
	fusedAcc := Evaluate(func(s Sample) int { f, _, _ := m.ForwardAll(s); return nn.Predict(f)[0] }, sel)
	nodeAcc := Evaluate(m.PredictNodeView, sel)
	structAcc := Evaluate(m.PredictStructView, sel)
	if nodeAcc > fusedAcc && nodeAcc >= structAcc {
		m.predictMode = 1
	} else if structAcc > fusedAcc && structAcc > nodeAcc {
		m.predictMode = 2
	}
	return curve
}

// viewPhase trains both view bodies through their own heads.
type viewPhase struct{ m *MVGNN }

func (p *viewPhase) trainStep(s Sample, loss *nn.SoftmaxCrossEntropy, aux float64) (float64, int) {
	m := p.m
	hn := m.NodeView.PenultForward(s.Node)
	hs := m.StructView.PenultForward(s.Struct)
	ln := m.NodeView.head.Forward(hn)
	ls := m.StructView.head.Forward(hs)
	label := []int{s.Label}
	l1, gn := loss.Loss(ln, label)
	_, gs := loss.Loss(ls, label)
	m.NodeView.BackwardFromPenult(m.NodeView.head.Backward(gn))
	m.StructView.BackwardFromPenult(m.StructView.head.Backward(gs))
	return l1, nn.Predict(ln)[0]
}

func (p *viewPhase) params() []*nn.Param {
	return append(p.m.NodeView.Params(), p.m.StructView.Params()...)
}

func (p *viewPhase) clip(norm float64) {
	nn.ClipGrads(p.m.NodeView.Params(), norm)
	nn.ClipGrads(p.m.StructView.Params(), norm)
}

// fusePhase trains only the fusion head over frozen view outputs.
type fusePhase struct{ m *MVGNN }

func (p *fusePhase) trainStep(s Sample, loss *nn.SoftmaxCrossEntropy, aux float64) (float64, int) {
	m := p.m
	fused, _, _ := m.ForwardAll(s)
	l, gf := loss.Loss(fused, []int{s.Label})
	// Backprop stops at the fusion input: view bodies stay frozen.
	m.fuse.Backward(m.out.Backward(gf))
	return l, nn.Predict(fused)[0]
}

func (p *fusePhase) params() []*nn.Param { return p.m.out.Params() }

func (p *fusePhase) clip(norm float64) { nn.ClipGrads(p.m.out.Params(), norm) }

// Train runs supervised training of a single-view model.
func (v *SingleView) Train(samples []Sample, cfg TrainConfig, hook func(EpochStats)) []EpochStats {
	return trainLoop(v, samples, cfg, hook)
}

func trainLoop(c classifier, samples []Sample, cfg TrainConfig, hook func(EpochStats)) []EpochStats {
	if cfg.Epochs <= 0 {
		cfg = DefaultTrainConfig
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	loss := &nn.SoftmaxCrossEntropy{Temperature: cfg.Temperature}
	opt := nn.NewAdam(cfg.LR)
	params := c.params()
	order := rng.Perm(len(samples))
	batch := cfg.BatchSize
	if batch < 1 {
		batch = 1
	}

	cancelled := func() bool { return cfg.Ctx != nil && cfg.Ctx.Err() != nil }
	var curve []EpochStats
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		if cancelled() {
			obs.Warn("gnn.train.cancelled", "epoch", epoch)
			return curve
		}
		epochSpan := obs.Start("gnn.epoch")
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		totalLoss := 0.0
		correct := 0
		pending := 0
		step := func() {
			if pending == 0 {
				return
			}
			if cfg.ClipNorm > 0 {
				c.clip(cfg.ClipNorm)
			}
			opt.Step(params)
			pending = 0
		}
		for _, idx := range order {
			if pending == 0 && cancelled() {
				break
			}
			s := samples[idx]
			l, pred := c.trainStep(s, loss, cfg.AuxWeight)
			totalLoss += l
			if pred == s.Label {
				correct++
			}
			pending++
			if pending >= batch {
				step()
			}
		}
		step()
		st := EpochStats{
			Epoch: epoch,
			Loss:  totalLoss / float64(max(1, len(samples))),
			Acc:   float64(correct) / float64(max(1, len(samples))),
		}
		curve = append(curve, st)
		obs.GetCounter("mvpar_train_epochs_total").Inc()
		epochSpan.End()
		if hook != nil {
			hook(st)
		}
	}
	return curve
}

// Evaluate returns accuracy of predict over samples.
func Evaluate(predict func(Sample) int, samples []Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	correct := 0
	for _, s := range samples {
		if predict(s) == s.Label {
			correct++
		}
	}
	return float64(correct) / float64(len(samples))
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
