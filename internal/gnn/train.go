package gnn

import (
	"context"
	"math/rand"

	"mvpar/internal/nn"
	"mvpar/internal/obs"
	"mvpar/internal/pool"
	"mvpar/internal/tensor"
)

// TrainConfig controls supervised training of the graph models.
type TrainConfig struct {
	Epochs      int
	LR          float64
	Temperature float64 // softmax temperature (the paper trains at 0.5)
	ClipNorm    float64
	BatchSize   int     // gradient-accumulation batch (paper uses 32); 0 = 1
	AuxWeight   float64 // deep-supervision weight on each view's own head (MV-GNN only)
	// PretrainEpochs, when positive, runs the unsupervised GraphSAGE
	// objective (§III-E) on each view's conv stack before supervised
	// training.
	PretrainEpochs int
	Seed           int64
	// Parallelism is the number of data-parallel training workers per
	// minibatch. 0 uses pool.DefaultParallelism() (NumCPU or the --jobs
	// override); 1 runs the exact legacy serial loop. Any value produces
	// bit-identical parameters and loss curves: workers accumulate
	// per-sample gradients into private shadow buffers that are reduced
	// into the master in sample order at each batch boundary.
	Parallelism int
	// Ctx, when non-nil, is checked at every batch boundary; a done
	// context stops training early and the curve so far is returned.
	// Callers that need an error must inspect Ctx.Err() afterwards.
	Ctx context.Context
}

// DefaultTrainConfig is sized so the built-in experiments train in
// seconds while preserving the paper's loss (softmax at temperature 0.5).
var DefaultTrainConfig = TrainConfig{
	Epochs:      30,
	LR:          0.003,
	Temperature: 0.5,
	ClipNorm:    5,
	BatchSize:   8,
	AuxWeight:   0.5,
	Seed:        1,
}

// EpochStats records one epoch of training for figure-7 style curves.
type EpochStats struct {
	Epoch int
	Loss  float64
	Acc   float64
}

// classifier abstracts MVGNN and single-view DGCNN training. trainStep
// runs forward, loss and backward for one sample and returns the loss and
// the fused prediction.
type classifier interface {
	trainStep(s Sample, loss *nn.SoftmaxCrossEntropy, aux float64) (float64, int)
	params() []*nn.Param
	// clip applies gradient clipping at batch boundaries; groups that
	// train independently (the two views) clip independently so neither
	// starves the other of its gradient budget.
	clip(norm float64)
	// replicate returns a worker-private copy sharing this classifier's
	// weights but owning its own gradient buffers and activation caches,
	// with params() in the same order as the original.
	replicate() classifier
}

// SingleView wraps one DGCNN over either the node or the structural
// encoding of each sample — the "Static GNN" baseline and the per-view
// probes of figure 8.
type SingleView struct {
	Net       *DGCNN
	UseStruct bool
}

// NewSingleView builds a single-view classifier.
func NewSingleView(inputDim int, useStruct bool, seed int64) *SingleView {
	rng := rand.New(rand.NewSource(seed))
	return &SingleView{Net: NewDGCNN(DefaultConfig(inputDim), rng), UseStruct: useStruct}
}

func (v *SingleView) pick(s Sample) *EncodedGraph {
	if v.UseStruct {
		return s.Struct
	}
	return s.Node
}

func (v *SingleView) trainStep(s Sample, loss *nn.SoftmaxCrossEntropy, aux float64) (float64, int) {
	logits := v.Net.Forward(v.pick(s))
	l, grad := loss.Loss(logits, []int{s.Label})
	v.Net.Backward(grad)
	return l, nn.Predict(logits)[0]
}

func (v *SingleView) params() []*nn.Param { return v.Net.Params() }

func (v *SingleView) clip(norm float64) { nn.ClipGrads(v.Net.Params(), norm) }

func (v *SingleView) replicate() classifier {
	return &SingleView{Net: v.Net.Replicate(), UseStruct: v.UseStruct}
}

// Predict returns the predicted class for one sample.
func (v *SingleView) Predict(s Sample) int {
	return nn.Predict(v.Net.Forward(v.pick(s)))[0]
}

// Train runs supervised training of the multi-view model and returns the
// per-epoch curve (figure 7). hook, if non-nil, observes each epoch.
//
// Training is staged, the standard schedule for late-fusion multi-view
// models: first both views learn with their own classification heads
// (deep supervision), then the view bodies are frozen and the fusion head
// is fitted on their outputs — so the fused model starts from the best
// single view and can only add structural evidence on top.
func (m *MVGNN) Train(samples []Sample, cfg TrainConfig, hook func(EpochStats)) []EpochStats {
	defer obs.Start("gnn.train").End()
	if cfg.Epochs <= 0 {
		cfg = DefaultTrainConfig
	}
	// Carve out an internal validation slice (~15%) the optimizer never
	// sees; it decides which head (fused / node / struct) the model uses
	// at inference, so the multi-view model cannot silently regress below
	// its own views on unseen data.
	fit, sel := samples, samples
	if len(samples) >= 40 {
		rng := rand.New(rand.NewSource(cfg.Seed ^ 0x51ED))
		idx := rng.Perm(len(samples))
		cut := len(samples) - len(samples)*15/100
		fit = make([]Sample, 0, cut)
		sel = make([]Sample, 0, len(samples)-cut)
		for _, i := range idx[:cut] {
			fit = append(fit, samples[i])
		}
		for _, i := range idx[cut:] {
			sel = append(sel, samples[i])
		}
	}
	samples = fit
	if cfg.PretrainEpochs > 0 {
		pretrainSpan := obs.Start("gnn.pretrain")
		nodeGraphs := make([]*EncodedGraph, len(samples))
		structGraphs := make([]*EncodedGraph, len(samples))
		for i, s := range samples {
			nodeGraphs[i] = s.Node
			structGraphs[i] = s.Struct
		}
		m.NodeView.Pretrain(nodeGraphs, cfg.PretrainEpochs, cfg.LR, cfg.Seed)
		m.StructView.Pretrain(structGraphs, cfg.PretrainEpochs, cfg.LR, cfg.Seed+1)
		pretrainSpan.End()
	}
	viewCfg := cfg
	curve := trainLoop(&viewPhase{m: m}, samples, viewCfg, hook)

	fuseCfg := cfg
	fuseCfg.Epochs = cfg.Epochs/4 + 1
	curve = append(curve, trainLoop(&fusePhase{m: m}, samples, fuseCfg, hook)...)

	m.predictMode = 0
	// Head selection fans out over replicas: each evaluation worker gets a
	// private copy so concurrent forward passes never share layer caches.
	fusedAcc := EvaluateParallel(func() func(Sample) int {
		r := m.Replicate()
		return func(s Sample) int { f, _, _ := r.ForwardAll(s); return nn.Predict(f)[0] }
	}, sel, cfg.Parallelism)
	nodeAcc := EvaluateParallel(func() func(Sample) int { return m.Replicate().PredictNodeView }, sel, cfg.Parallelism)
	structAcc := EvaluateParallel(func() func(Sample) int { return m.Replicate().PredictStructView }, sel, cfg.Parallelism)
	if nodeAcc > fusedAcc && nodeAcc >= structAcc {
		m.predictMode = 1
	} else if structAcc > fusedAcc && structAcc > nodeAcc {
		m.predictMode = 2
	}
	return curve
}

// viewPhase trains both view bodies through their own heads.
type viewPhase struct{ m *MVGNN }

func (p *viewPhase) trainStep(s Sample, loss *nn.SoftmaxCrossEntropy, aux float64) (float64, int) {
	m := p.m
	hn := m.NodeView.PenultForward(s.Node)
	hs := m.StructView.PenultForward(s.Struct)
	ln := m.NodeView.head.Forward(hn)
	ls := m.StructView.head.Forward(hs)
	label := []int{s.Label}
	l1, gn := loss.Loss(ln, label)
	_, gs := loss.Loss(ls, label)
	m.NodeView.BackwardFromPenult(m.NodeView.head.Backward(gn))
	m.StructView.BackwardFromPenult(m.StructView.head.Backward(gs))
	return l1, nn.Predict(ln)[0]
}

func (p *viewPhase) params() []*nn.Param {
	return append(p.m.NodeView.Params(), p.m.StructView.Params()...)
}

func (p *viewPhase) clip(norm float64) {
	nn.ClipGrads(p.m.NodeView.Params(), norm)
	nn.ClipGrads(p.m.StructView.Params(), norm)
}

func (p *viewPhase) replicate() classifier { return &viewPhase{m: p.m.Replicate()} }

// fusePhase trains only the fusion head over frozen view outputs.
type fusePhase struct{ m *MVGNN }

func (p *fusePhase) trainStep(s Sample, loss *nn.SoftmaxCrossEntropy, aux float64) (float64, int) {
	m := p.m
	fused, _, _ := m.ForwardAll(s)
	l, gf := loss.Loss(fused, []int{s.Label})
	// Backprop stops at the fusion input: view bodies stay frozen.
	m.fuse.Backward(m.out.Backward(gf))
	return l, nn.Predict(fused)[0]
}

func (p *fusePhase) params() []*nn.Param { return p.m.out.Params() }

func (p *fusePhase) clip(norm float64) { nn.ClipGrads(p.m.out.Params(), norm) }

func (p *fusePhase) replicate() classifier { return &fusePhase{m: p.m.Replicate()} }

// Train runs supervised training of a single-view model.
func (v *SingleView) Train(samples []Sample, cfg TrainConfig, hook func(EpochStats)) []EpochStats {
	return trainLoop(v, samples, cfg, hook)
}

// stepOut is one training step's contribution to the epoch statistics.
type stepOut struct {
	loss float64
	pred int
}

func trainLoop(c classifier, samples []Sample, cfg TrainConfig, hook func(EpochStats)) []EpochStats {
	if cfg.Epochs <= 0 {
		cfg = DefaultTrainConfig
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	loss := &nn.SoftmaxCrossEntropy{Temperature: cfg.Temperature}
	opt := nn.NewAdam(cfg.LR)
	params := c.params()
	order := rng.Perm(len(samples))
	batch := cfg.BatchSize
	if batch < 1 {
		batch = 1
	}
	workers := cfg.Parallelism
	if workers <= 0 {
		workers = pool.DefaultParallelism()
	}
	if workers > batch {
		// A minibatch is the unit of fan-out; more workers than batch
		// slots would idle.
		workers = batch
	}

	// Data-parallel state: worker-private model replicas (shared weights,
	// private gradients) and one shadow-gradient slot per minibatch
	// position. Slot k receives exactly sample k's gradient, so reducing
	// slots into the master in slot order reproduces the serial in-place
	// accumulation bit for bit, independent of the worker count.
	var reps []classifier
	var repParams [][]*nn.Param
	var slots [][]*tensor.Matrix
	if workers > 1 {
		reps = make([]classifier, workers)
		repParams = make([][]*nn.Param, workers)
		for w := range reps {
			reps[w] = c.replicate()
			repParams[w] = reps[w].params()
		}
		slots = make([][]*tensor.Matrix, batch)
		for k := range slots {
			slots[k] = make([]*tensor.Matrix, len(params))
			for j, p := range params {
				slots[k][j] = tensor.New(p.Value.Rows, p.Value.Cols)
			}
		}
	}

	cancelled := func() bool { return cfg.Ctx != nil && cfg.Ctx.Err() != nil }
	var curve []EpochStats
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		if cancelled() {
			obs.Warn("gnn.train.cancelled", "epoch", epoch)
			return curve
		}
		epochSpan := obs.Start("gnn.epoch")
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		totalLoss := 0.0
		correct := 0
		if workers > 1 {
			for lo := 0; lo < len(order); lo += batch {
				// Same cancellation point as the serial loop: the check
				// before the first sample of each minibatch.
				if cancelled() {
					break
				}
				hi := lo + batch
				if hi > len(order) {
					hi = len(order)
				}
				idxs := order[lo:hi]
				outs, err := pool.MapWorker(pool.Config{Workers: workers}, len(idxs), func(w, k int) (stepOut, error) {
					s := samples[idxs[k]]
					l, pred := reps[w].trainStep(s, loss, cfg.AuxWeight)
					// Move the replica's per-sample gradient into slot k and
					// clear it for the worker's next sample.
					for j, p := range repParams[w] {
						dst := slots[k][j].Data
						for i, v := range p.Grad.Data {
							dst[i] = v
							p.Grad.Data[i] = 0
						}
					}
					return stepOut{loss: l, pred: pred}, nil
				})
				if err != nil {
					// trainStep returns no errors, so this can only be a
					// captured worker panic; resurface it like the serial
					// loop would have.
					panic(err)
				}
				// Reduce in slot (= sample) order, then clip and step with
				// the exact serial batch semantics.
				for k := range idxs {
					for j := range params {
						params[j].Grad.AddInPlace(slots[k][j])
					}
					totalLoss += outs[k].loss
					if outs[k].pred == samples[idxs[k]].Label {
						correct++
					}
				}
				if cfg.ClipNorm > 0 {
					c.clip(cfg.ClipNorm)
				}
				opt.Step(params)
			}
		} else {
			pending := 0
			step := func() {
				if pending == 0 {
					return
				}
				if cfg.ClipNorm > 0 {
					c.clip(cfg.ClipNorm)
				}
				opt.Step(params)
				pending = 0
			}
			for _, idx := range order {
				if pending == 0 && cancelled() {
					break
				}
				s := samples[idx]
				l, pred := c.trainStep(s, loss, cfg.AuxWeight)
				totalLoss += l
				if pred == s.Label {
					correct++
				}
				pending++
				if pending >= batch {
					step()
				}
			}
			step()
		}
		st := EpochStats{
			Epoch: epoch,
			Loss:  totalLoss / float64(max(1, len(samples))),
			Acc:   float64(correct) / float64(max(1, len(samples))),
		}
		curve = append(curve, st)
		obs.GetCounter("mvpar_train_epochs_total").Inc()
		epochSpan.End()
		if hook != nil {
			hook(st)
		}
	}
	return curve
}

// Evaluate returns accuracy of predict over samples.
func Evaluate(predict func(Sample) int, samples []Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	correct := 0
	for _, s := range samples {
		if predict(s) == s.Label {
			correct++
		}
	}
	return float64(correct) / float64(len(samples))
}

// EvaluateParallel is Evaluate fanned out over the worker pool. Model
// forward passes cache activations in their layers, so a single predictor
// cannot be shared between workers; newPredict is called once per worker
// to build a private predictor (typically Replicate().Predict). jobs <= 0
// uses pool.DefaultParallelism(); jobs == 1 calls newPredict once and runs
// the serial Evaluate. Accuracy is a count of independent per-sample
// hits, so the result is identical at any worker count.
func EvaluateParallel(newPredict func() func(Sample) int, samples []Sample, jobs int) float64 {
	if len(samples) == 0 {
		return 0
	}
	if jobs <= 0 {
		jobs = pool.DefaultParallelism()
	}
	if jobs > len(samples) {
		jobs = len(samples)
	}
	if jobs == 1 {
		return Evaluate(newPredict(), samples)
	}
	preds := make([]func(Sample) int, jobs)
	for w := range preds {
		preds[w] = newPredict()
	}
	hits, err := pool.MapWorker(pool.Config{Workers: jobs}, len(samples), func(w, i int) (bool, error) {
		return preds[w](samples[i]) == samples[i].Label, nil
	})
	if err != nil {
		panic(err) // predictors return no errors; only a captured panic lands here
	}
	correct := 0
	for _, h := range hits {
		if h {
			correct++
		}
	}
	return float64(correct) / float64(len(samples))
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
