package gnn

import (
	"math"
	"math/rand"
	"testing"

	"mvpar/internal/nn"
	"mvpar/internal/tensor"
)

func pretrainGraphs(rng *rand.Rand, n int) []*EncodedGraph {
	var gs []*EncodedGraph
	for i := 0; i < n; i++ {
		size := 4 + rng.Intn(5)
		var g *EncodedGraph
		x := tensor.Randn(size, 3, 1, rng)
		if i%2 == 0 {
			g = Encode(lineGraph(size), x)
		} else {
			g = Encode(starGraph(size), x)
		}
		gs = append(gs, g)
	}
	return gs
}

func TestPretrainLossDecreases(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	graphs := pretrainGraphs(rng, 12)
	d := NewDGCNN(DefaultConfig(3), rand.New(rand.NewSource(2)))
	losses := d.Pretrain(graphs, 15, 0.01, 3)
	if len(losses) != 15 {
		t.Fatalf("losses = %d", len(losses))
	}
	if losses[len(losses)-1] >= losses[0] {
		t.Fatalf("unsupervised loss did not decrease: %v -> %v", losses[0], losses[len(losses)-1])
	}
	for _, l := range losses {
		if math.IsNaN(l) || math.IsInf(l, 0) {
			t.Fatalf("non-finite loss %v", l)
		}
	}
}

func TestPretrainStepDegenerateGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := NewDGCNN(DefaultConfig(2), rand.New(rand.NewSource(5)))
	single := Encode(lineGraph(1), tensor.New(1, 2))
	if l := d.PretrainStep(single, 8, rng); l != 0 {
		t.Fatalf("single-node pretrain loss = %v, want 0", l)
	}
}

// Gradient check: with a fixed RNG seed the sampled pairs are fixed, so
// the pretraining loss is a deterministic function of the weights.
func TestPretrainGradientCheck(t *testing.T) {
	cfg := Config{InputDim: 2, ConvChannels: []int{3, 1}, SortK: 4,
		Conv1Filters: 2, Conv2Filters: 2, DenseDim: 4, NumClasses: 2}
	d := NewDGCNN(cfg, rand.New(rand.NewSource(6)))
	g := Encode(lineGraph(5), tensor.Randn(5, 2, 1, rand.New(rand.NewSource(7))))

	lossAt := func() float64 {
		// Fresh RNG per evaluation so pair sampling is identical; the
		// gradient side effects are cleared afterwards.
		rng := rand.New(rand.NewSource(42))
		l := d.PretrainStep(g, 100, rng)
		nn.ZeroGrads(d.convParams())
		return l
	}

	rng := rand.New(rand.NewSource(42))
	nn.ZeroGrads(d.convParams())
	_ = d.PretrainStep(g, 100, rng)
	// Snapshot analytic gradients before lossAt probes clear them.
	analyticGrads := map[*nn.Param][]float64{}
	for _, p := range d.convParams() {
		analyticGrads[p] = append([]float64(nil), p.Grad.Data...)
	}

	const eps = 1e-5
	for _, p := range d.convParams() {
		for _, i := range []int{0, len(p.Value.Data) - 1} {
			analytic := analyticGrads[p][i]
			orig := p.Value.Data[i]
			p.Value.Data[i] = orig + eps
			lp := lossAt()
			p.Value.Data[i] = orig - eps
			lm := lossAt()
			p.Value.Data[i] = orig
			numeric := (lp - lm) / (2 * eps)
			if math.Abs(analytic-numeric) > 1e-4*(1+math.Abs(numeric)) {
				t.Fatalf("param %s[%d]: analytic %v vs numeric %v", p.Name, i, analytic, numeric)
			}
		}
	}
}

func TestTrainWithPretraining(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	samples := makeSyntheticSamples(40, rng, 4)
	m := NewMVGNN(4, 4, 9)
	cfg := TrainConfig{Epochs: 12, LR: 0.005, Temperature: 0.5, ClipNorm: 5,
		BatchSize: 4, PretrainEpochs: 3, Seed: 9}
	m.Train(samples, cfg, nil)
	if acc := Evaluate(m.Predict, samples); acc < 0.85 {
		t.Fatalf("accuracy with pretraining = %v", acc)
	}
}
