// Package gnn implements the paper's models: the Deep Graph Convolutional
// Neural Network (DGCNN, Zhang et al. 2018) used by each view — graph
// convolution stack, SortPooling, 1-D convolutions, dense head — and the
// multi-view fusion model (eq. 5) that combines the node-feature view and
// the structural-pattern view for parallelism classification.
package gnn

import (
	"fmt"

	"mvpar/internal/graph"
	"mvpar/internal/tensor"
)

// EncodedGraph is a graph prepared for message passing: the random-walk
// normalized adjacency Â = D⁻¹(A + I) over the undirected structure in CSR
// form, with its transpose for backpropagation, plus the node feature
// matrix. The CSR arrays are built once per record and are read-only
// afterwards, so epochs and data-parallel replicas share them freely.
type EncodedGraph struct {
	N int
	X *tensor.Matrix // N x F node features

	a  *tensor.Sparse // Â, rows store columns ascending
	at *tensor.Sparse // Âᵀ

	// aDense/atDense, when set (ForceDense), route propagation through the
	// dense MatMul kernel instead of SpMM — the reference path the
	// sparse-vs-dense bit-identity test compares against.
	aDense, atDense *tensor.Matrix
}

// WithFeatures returns a shallow copy of the encoded graph that shares
// the adjacency but carries different node features (used to derive the
// static-only node view without re-encoding the topology).
func (g *EncodedGraph) WithFeatures(x *tensor.Matrix) *EncodedGraph {
	if x.Rows != g.N {
		panic(fmt.Sprintf("gnn: WithFeatures rows %d != nodes %d", x.Rows, g.N))
	}
	return &EncodedGraph{N: g.N, X: x, a: g.a, at: g.at, aDense: g.aDense, atDense: g.atDense}
}

// ForceDense materializes Â and Âᵀ as dense matrices and routes propagate
// through MatMul from now on. Debug/testing hook: because the dense kernel
// accumulates over k ascending and skips zeros, and the CSR rows store
// columns ascending, the dense path is bit-identical to the sparse one —
// which TestSparseDenseBitIdentical pins.
func (g *EncodedGraph) ForceDense() {
	g.aDense = g.a.Dense()
	g.atDense = g.at.Dense()
}

// Encode builds an EncodedGraph from a directed graph and node features.
// Edges are symmetrized (message passing ignores dependence direction,
// matching the DGCNN's treatment of arbitrary graphs) and self-loops are
// added before normalization. Each CSR row stores its columns in ascending
// order — the determinism contract tensor.SpMMInto relies on.
func Encode(g *graph.Directed, x *tensor.Matrix) *EncodedGraph {
	n := g.NumNodes()
	if x.Rows != n {
		panic(fmt.Sprintf("gnn: Encode features rows %d != nodes %d", x.Rows, n))
	}
	neighbors := make([]map[int]bool, n)
	for v := 0; v < n; v++ {
		neighbors[v] = map[int]bool{v: true} // self loop
	}
	for _, e := range g.Edges() {
		neighbors[e.From][e.To] = true
		neighbors[e.To][e.From] = true
	}
	rowPtr := make([]int, n+1)
	for v := 0; v < n; v++ {
		rowPtr[v+1] = rowPtr[v] + len(neighbors[v])
	}
	nnz := rowPtr[n]
	colIdx := make([]int, 0, nnz)
	val := make([]float64, 0, nnz)
	for v := 0; v < n; v++ {
		w := 1.0 / float64(len(neighbors[v]))
		// Ascending column order for reproducibility (and the SpMM
		// bit-identity contract).
		for u := 0; u < n; u++ {
			if neighbors[v][u] {
				colIdx = append(colIdx, u)
				val = append(val, w)
			}
		}
	}
	a := tensor.NewCSR(n, n, rowPtr, colIdx, val)
	return &EncodedGraph{N: n, X: x, a: a, at: a.Transposed()}
}

// AdjacencyEntries returns the number of normalized adjacency entries
// (symmetrized edges plus self-loops) — a size statistic for exports.
func (g *EncodedGraph) AdjacencyEntries() int { return g.a.NNZ() }

// Adjacency returns the normalized adjacency Â in CSR form. Read-only:
// the arrays are shared across feature views, epochs and replicas.
func (g *EncodedGraph) Adjacency() *tensor.Sparse { return g.a }

// propagate computes Â·H (rows of H aggregated over normalized neighbors).
func (g *EncodedGraph) propagate(h *tensor.Matrix) *tensor.Matrix {
	out := tensor.New(g.N, h.Cols)
	g.propagateInto(h, out)
	return out
}

// propagateT computes Âᵀ·H, needed by the backward pass.
func (g *EncodedGraph) propagateT(h *tensor.Matrix) *tensor.Matrix {
	out := tensor.New(g.N, h.Cols)
	g.propagateTInto(h, out)
	return out
}

// propagateInto computes out = Â·H without allocating. out must not alias h.
func (g *EncodedGraph) propagateInto(h, out *tensor.Matrix) {
	if g.aDense != nil {
		tensor.MatMulInto(g.aDense, h, out)
		return
	}
	tensor.SpMMInto(g.a, h, out)
}

// propagateTInto computes out = Âᵀ·H without allocating. out must not alias h.
func (g *EncodedGraph) propagateTInto(h, out *tensor.Matrix) {
	if g.atDense != nil {
		tensor.MatMulInto(g.atDense, h, out)
		return
	}
	tensor.SpMMInto(g.at, h, out)
}
