// Package gnn implements the paper's models: the Deep Graph Convolutional
// Neural Network (DGCNN, Zhang et al. 2018) used by each view — graph
// convolution stack, SortPooling, 1-D convolutions, dense head — and the
// multi-view fusion model (eq. 5) that combines the node-feature view and
// the structural-pattern view for parallelism classification.
package gnn

import (
	"fmt"

	"mvpar/internal/graph"
	"mvpar/internal/tensor"
)

// weightedEdge is one entry of a normalized sparse adjacency row.
type weightedEdge struct {
	to int
	w  float64
}

// EncodedGraph is a graph prepared for message passing: the random-walk
// normalized adjacency Â = D⁻¹(A + I) over the undirected structure, with
// its transpose for backpropagation, plus the node feature matrix.
type EncodedGraph struct {
	N    int
	X    *tensor.Matrix // N x F node features
	adj  [][]weightedEdge
	adjT [][]weightedEdge
}

// WithFeatures returns a shallow copy of the encoded graph that shares
// the adjacency but carries different node features (used to derive the
// static-only node view without re-encoding the topology).
func (g *EncodedGraph) WithFeatures(x *tensor.Matrix) *EncodedGraph {
	if x.Rows != g.N {
		panic(fmt.Sprintf("gnn: WithFeatures rows %d != nodes %d", x.Rows, g.N))
	}
	return &EncodedGraph{N: g.N, X: x, adj: g.adj, adjT: g.adjT}
}

// Encode builds an EncodedGraph from a directed graph and node features.
// Edges are symmetrized (message passing ignores dependence direction,
// matching the DGCNN's treatment of arbitrary graphs) and self-loops are
// added before normalization.
func Encode(g *graph.Directed, x *tensor.Matrix) *EncodedGraph {
	n := g.NumNodes()
	if x.Rows != n {
		panic(fmt.Sprintf("gnn: Encode features rows %d != nodes %d", x.Rows, n))
	}
	neighbors := make([]map[int]bool, n)
	for v := 0; v < n; v++ {
		neighbors[v] = map[int]bool{v: true} // self loop
	}
	for _, e := range g.Edges() {
		neighbors[e.From][e.To] = true
		neighbors[e.To][e.From] = true
	}
	eg := &EncodedGraph{N: n, X: x, adj: make([][]weightedEdge, n), adjT: make([][]weightedEdge, n)}
	for v := 0; v < n; v++ {
		deg := len(neighbors[v])
		w := 1.0 / float64(deg)
		row := make([]weightedEdge, 0, deg)
		// Deterministic order for reproducibility.
		for u := 0; u < n; u++ {
			if neighbors[v][u] {
				row = append(row, weightedEdge{to: u, w: w})
			}
		}
		eg.adj[v] = row
	}
	for v := 0; v < n; v++ {
		for _, e := range eg.adj[v] {
			eg.adjT[e.to] = append(eg.adjT[e.to], weightedEdge{to: v, w: e.w})
		}
	}
	return eg
}

// AdjacencyEntries returns the number of normalized adjacency entries
// (symmetrized edges plus self-loops) — a size statistic for exports.
func (g *EncodedGraph) AdjacencyEntries() int {
	n := 0
	for _, row := range g.adj {
		n += len(row)
	}
	return n
}

// propagate computes Â·H (rows of H aggregated over normalized neighbors).
func (g *EncodedGraph) propagate(h *tensor.Matrix) *tensor.Matrix {
	return spmm(g.adj, h)
}

// propagateT computes Âᵀ·H, needed by the backward pass.
func (g *EncodedGraph) propagateT(h *tensor.Matrix) *tensor.Matrix {
	return spmm(g.adjT, h)
}

func spmm(rows [][]weightedEdge, h *tensor.Matrix) *tensor.Matrix {
	out := tensor.New(len(rows), h.Cols)
	for v, row := range rows {
		dst := out.Row(v)
		for _, e := range row {
			src := h.Row(e.to)
			for j, s := range src {
				dst[j] += e.w * s
			}
		}
	}
	return out
}
