package gnn

import (
	"math/rand"
	"testing"

	"mvpar/internal/tensor"
)

// TestDGCNNSteadyStateAllocFree asserts the arena actually delivers:
// after warm-up (which sizes the arena's free lists and the cached index
// buffers), a full DGCNN forward + backward allocates nothing.
func TestDGCNNSteadyStateAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cfg := DefaultConfig(4)
	d := NewDGCNN(cfg, rng)
	g := Encode(lineGraph(9), tensor.Randn(9, 4, 1, rng))
	grad := tensor.New(1, cfg.NumClasses)
	grad.Set(0, 0, 1)
	grad.Set(0, 1, -1)
	step := func() {
		d.Forward(g)
		d.Backward(grad)
	}
	// Two cycles populate the arena free lists (the first run's buffers
	// only become reusable at the second run's Reset); a third for luck.
	for i := 0; i < 3; i++ {
		step()
	}
	if n := testing.AllocsPerRun(10, step); n != 0 {
		t.Fatalf("DGCNN forward+backward allocates %v per run in steady state, want 0", n)
	}
}

// TestDGCNNAllocFreeAcrossGraphSizes checks the arena also reaches steady
// state when alternating between graphs of different sizes (each size
// class gets its own free-list bucket).
func TestDGCNNAllocFreeAcrossGraphSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	cfg := DefaultConfig(3)
	d := NewDGCNN(cfg, rng)
	graphs := []*EncodedGraph{
		Encode(lineGraph(4), tensor.Randn(4, 3, 1, rng)),
		Encode(starGraph(11), tensor.Randn(11, 3, 1, rng)),
		Encode(lineGraph(25), tensor.Randn(25, 3, 1, rng)),
	}
	grad := tensor.New(1, cfg.NumClasses)
	grad.Set(0, 0, 1)
	grad.Set(0, 1, -1)
	step := func() {
		for _, g := range graphs {
			d.Forward(g)
			d.Backward(grad)
		}
	}
	for i := 0; i < 3; i++ {
		step()
	}
	if n := testing.AllocsPerRun(10, step); n != 0 {
		t.Fatalf("mixed-size forward+backward allocates %v per run in steady state, want 0", n)
	}
}
