package gnn

import (
	"context"
	"math"
	"math/rand"
	"testing"
)

// trainedParityModel trains a small model on the synthetic star-vs-chain
// task so the float32-vs-float64 comparison runs on realistic (trained,
// saturating-tanh) weights rather than random initialization.
func trainedParityModel(t *testing.T) (*MVGNN, []Sample) {
	t.Helper()
	rng := rand.New(rand.NewSource(31))
	samples := makeSyntheticSamples(24, rng, 4)
	m := NewMVGNN(4, 4, 13)
	m.Train(samples, TrainConfig{Epochs: 6, LR: 0.005, Temperature: 0.5, ClipNorm: 5, BatchSize: 4, Seed: 13}, nil)
	return m, samples
}

// TestPredictWithProbaF32Parity is the unit-level accuracy-parity gate:
// on every seed sample the float32 fast path must return the same label
// as the float64 reference and a probability within 1e-4, across the
// fused head and the node-view (degraded) path.
func TestPredictWithProbaF32Parity(t *testing.T) {
	m, samples := trainedParityModel(t)
	for i, s := range samples {
		c64, p64 := m.PredictWithProba(s)
		c32, p32 := m.PredictWithProbaF32(s)
		if c32 != c64 {
			t.Fatalf("sample %d: float32 label %d, float64 label %d (proba %v vs %v)", i, c32, c64, p32, p64)
		}
		if math.Abs(p32-p64) > 1e-4 {
			t.Fatalf("sample %d: float32 proba %v drifts from float64 %v by %v", i, p32, p64, math.Abs(p32-p64))
		}
		n64c, n64p := m.PredictWithProbaNodeView(s)
		n32c, n32p := m.PredictWithProbaF32NodeView(s)
		if n32c != n64c {
			t.Fatalf("sample %d: node-view float32 label %d, float64 %d", i, n32c, n64c)
		}
		if math.Abs(n32p-n64p) > 1e-4 {
			t.Fatalf("sample %d: node-view proba drift %v", i, math.Abs(n32p-n64p))
		}
	}
}

// TestPredictWithProbaF32PredictModes exercises the head selection: the
// quantized engine must follow the same predictMode as the float64 path.
func TestPredictWithProbaF32PredictModes(t *testing.T) {
	m, samples := trainedParityModel(t)
	for _, mode := range []int{0, 1, 2} {
		m.predictMode = mode
		m.f32 = nil // re-quantize with the new mode
		for i, s := range samples {
			c64, p64 := m.PredictWithProba(s)
			c32, p32 := m.PredictWithProbaF32(s)
			if c32 != c64 || math.Abs(p32-p64) > 1e-4 {
				t.Fatalf("mode %d sample %d: float32 (%d, %v) vs float64 (%d, %v)", mode, i, c32, p32, c64, p64)
			}
		}
	}
}

// TestMVGNNF32ReplicateSharesWeights pins the replica contract: replicas
// share the quantized weights (no re-quantization) but own their scratch,
// and agree exactly with the source replica.
func TestMVGNNF32ReplicateSharesWeights(t *testing.T) {
	m, samples := trainedParityModel(t)
	q := m.QuantizeF32()
	rep := q.Replicate()
	if rep.w != q.w {
		t.Fatal("replica does not share quantized weights")
	}
	if rep.arena == q.arena {
		t.Fatal("replica shares the scratch arena")
	}
	for i, s := range samples {
		c1, p1 := q.PredictWithProba(s)
		c2, p2 := rep.PredictWithProba(s)
		if c1 != c2 || p1 != p2 {
			t.Fatalf("sample %d: replica (%d, %v) differs from source (%d, %v)", i, c2, p2, c1, p1)
		}
	}
}

// TestPredictWithProbaF32SteadyStateAllocFree: after warm-up, the
// quantized forward must allocate nothing per prediction — the property
// BenchmarkForwardF32's allocs/op gate defends in CI.
func TestPredictWithProbaF32SteadyStateAllocFree(t *testing.T) {
	m, samples := trainedParityModel(t)
	s := samples[0]
	for i := 0; i < 3; i++ {
		m.PredictWithProbaF32(s)
	}
	if n := testing.AllocsPerRun(20, func() { m.PredictWithProbaF32(s) }); n != 0 {
		t.Fatalf("float32 predict allocates %v/op in steady state, want 0", n)
	}
	ctx := context.Background()
	m.PredictWithProbaF32Context(ctx, s)
	if n := testing.AllocsPerRun(20, func() { m.PredictWithProbaF32Context(ctx, s) }); n != 0 {
		t.Fatalf("traced float32 predict allocates %v/op on untraced context, want 0", n)
	}
}

// TestQuantizeF32IsSnapshot: quantization copies the weights; mutating
// the float64 model afterwards must not leak into an existing mirror.
func TestQuantizeF32IsSnapshot(t *testing.T) {
	m, samples := trainedParityModel(t)
	s := samples[0]
	q := m.QuantizeF32()
	c1, p1 := q.PredictWithProba(s)
	for _, p := range m.Params() {
		for i := range p.Value.Data {
			p.Value.Data[i] += 10
		}
	}
	c2, p2 := q.PredictWithProba(s)
	if c1 != c2 || p1 != p2 {
		t.Fatalf("quantized mirror changed after mutating float64 weights: (%d, %v) -> (%d, %v)", c1, p1, c2, p2)
	}
}
