// Package peg builds the Program Execution Graph (PEG) — the graph
// representation of code this work classifies. Nodes are computational
// units, loops and functions; edges are hierarchy (containment) plus the
// RAW/WAR/WAW data dependences measured by internal/deps. Each loop and
// the nodes within its dynamic extent form a sub-PEG, the unit of
// classification (paper §III-A, figure 5).
package peg

import (
	"fmt"

	"mvpar/internal/cu"
	"mvpar/internal/deps"
	"mvpar/internal/graph"
	"mvpar/internal/ir"
	"mvpar/internal/obs"
)

// NodeKind distinguishes PEG node types.
type NodeKind int

// PEG node kinds.
const (
	NodeCU NodeKind = iota
	NodeLoop
	NodeFunc
)

func (k NodeKind) String() string {
	switch k {
	case NodeCU:
		return "cu"
	case NodeLoop:
		return "loop"
	default:
		return "func"
	}
}

// Edge kinds used in the underlying graph. Dependence kinds are offset so
// a carried dependence is distinguishable from an independent one.
const (
	EdgeHierarchy = iota
	EdgeRAW
	EdgeWAR
	EdgeWAW
	EdgeRAWCarried
	EdgeWARCarried
	EdgeWAWCarried
)

// EdgeKindName names a PEG edge kind.
func EdgeKindName(k int) string {
	switch k {
	case EdgeHierarchy:
		return "child"
	case EdgeRAW:
		return "RAW"
	case EdgeWAR:
		return "WAR"
	case EdgeWAW:
		return "WAW"
	case EdgeRAWCarried:
		return "RAW*"
	case EdgeWARCarried:
		return "WAR*"
	case EdgeWAWCarried:
		return "WAW*"
	}
	return "?"
}

// DepEdgeKind maps a dependence to its PEG edge kind.
func DepEdgeKind(e deps.Edge) int {
	base := EdgeRAW
	switch e.Kind {
	case deps.WAR:
		base = EdgeWAR
	case deps.WAW:
		base = EdgeWAW
	}
	if e.Carried {
		base += EdgeRAWCarried - EdgeRAW
	}
	return base
}

// Node is one PEG node.
type Node struct {
	Kind   NodeKind
	CU     *cu.CU // when Kind == NodeCU
	LoopID int    // when Kind == NodeLoop
	Func   string // owning function (or the function itself for NodeFunc)
	Line   int
}

// Label renders a compact node label for DOT output.
func (n *Node) Label() string {
	switch n.Kind {
	case NodeCU:
		return fmt.Sprintf("cu%d@%d", n.CU.StmtID, n.Line)
	case NodeLoop:
		return fmt.Sprintf("loop%d@%d", n.LoopID, n.Line)
	default:
		return "fn:" + n.Func
	}
}

// PEG is a program execution graph.
type PEG struct {
	G     *graph.Directed
	Nodes []*Node

	ByStmt map[int]int // statement ID -> node index
	ByLoop map[int]int // loop ID -> node index
	ByFunc map[string]int

	CUs  *cu.Set
	Prog *ir.Program
}

// Build constructs the full-program PEG from the CU partition and the
// measured dependences.
func Build(prog *ir.Program, cus *cu.Set, result *deps.Result) *PEG {
	defer obs.Start("peg.build").End()
	p := &PEG{
		G:      graph.New(0),
		ByStmt: map[int]int{},
		ByLoop: map[int]int{},
		ByFunc: map[string]int{},
		CUs:    cus,
		Prog:   prog,
	}
	for _, fn := range prog.Funcs {
		id := p.G.AddNode()
		p.Nodes = append(p.Nodes, &Node{Kind: NodeFunc, Func: fn.Name})
		p.ByFunc[fn.Name] = id
	}
	for _, loopID := range prog.LoopIDs() {
		meta := prog.Loops[loopID]
		id := p.G.AddNode()
		p.Nodes = append(p.Nodes, &Node{Kind: NodeLoop, LoopID: loopID, Func: meta.Func, Line: meta.Line})
		p.ByLoop[loopID] = id
	}
	for _, c := range cus.CUs {
		id := p.G.AddNode()
		p.Nodes = append(p.Nodes, &Node{Kind: NodeCU, CU: c, Func: c.Func, Line: c.Line})
		p.ByStmt[c.StmtID] = id
	}

	// Hierarchy: function -> top-level loops and CUs; loop -> direct
	// children (nested loops and CUs).
	loopParent := map[int]int{} // loop -> parent loop (0 = function level)
	for _, loopID := range prog.LoopIDs() {
		loopParent[loopID] = 0
	}
	for _, fn := range prog.Funcs {
		var stack []int
		for _, in := range fn.Code {
			switch in.Op {
			case ir.OpLoopBegin:
				if len(stack) > 0 {
					loopParent[in.LoopID] = stack[len(stack)-1]
				}
				stack = append(stack, in.LoopID)
			case ir.OpLoopEnd:
				stack = stack[:len(stack)-1]
			}
		}
	}
	for _, loopID := range prog.LoopIDs() {
		meta := prog.Loops[loopID]
		if parent := loopParent[loopID]; parent != 0 {
			p.G.AddEdge(p.ByLoop[parent], p.ByLoop[loopID], EdgeHierarchy)
		} else {
			p.G.AddEdge(p.ByFunc[meta.Func], p.ByLoop[loopID], EdgeHierarchy)
		}
	}
	for _, c := range cus.CUs {
		child := p.ByStmt[c.StmtID]
		if c.LoopID != 0 {
			p.G.AddEdge(p.ByLoop[c.LoopID], child, EdgeHierarchy)
		} else {
			p.G.AddEdge(p.ByFunc[c.Func], child, EdgeHierarchy)
		}
	}

	// Dependence edges between CU nodes (self-dependences kept: a carried
	// self-edge is exactly what a recurrence looks like structurally).
	for _, e := range result.Edges {
		src, okS := p.ByStmt[e.SrcStmt]
		dst, okD := p.ByStmt[e.DstStmt]
		if !okS || !okD {
			continue
		}
		kind := DepEdgeKind(e)
		if !p.G.HasEdgeKind(src, dst, kind) {
			p.G.AddEdge(src, dst, kind)
		}
	}
	obs.GetCounter("mvpar_peg_builds_total").Inc()
	obs.GetCounter("mvpar_peg_nodes_total").Add(int64(p.G.NumNodes()))
	obs.GetCounter("mvpar_peg_edges_total").Add(int64(p.G.NumEdges()))
	return p
}

// SubPEG is the classification unit: the loop node plus every node in the
// loop's dynamic extent, with induced edges.
type SubPEG struct {
	LoopID int
	G      *graph.Directed
	Nodes  []*Node // parallel to G's node IDs
	Root   int     // index of the loop node within Nodes
}

// Extract returns the sub-PEG of one loop: the loop node, the CUs of the
// loop's dynamic extent (including called functions), and nested loop
// nodes, with all induced edges.
func (p *PEG) Extract(loopID int) *SubPEG {
	stmts := p.CUs.LoopRegionStmts(loopID)
	var ids []int
	ids = append(ids, p.ByLoop[loopID])
	// Nested loops inside the region.
	inRegion := map[int]bool{}
	for _, s := range stmts {
		inRegion[s] = true
	}
	for _, other := range p.Prog.LoopIDs() {
		if other == loopID {
			continue
		}
		for _, s := range p.CUs.LoopStmts[other] {
			if inRegion[s] {
				ids = append(ids, p.ByLoop[other])
				break
			}
		}
	}
	for _, s := range stmts {
		if id, ok := p.ByStmt[s]; ok {
			ids = append(ids, id)
		}
	}
	sub, newToOld := p.G.Subgraph(ids)
	nodes := make([]*Node, len(newToOld))
	root := 0
	for i, old := range newToOld {
		nodes[i] = p.Nodes[old]
		if nodes[i].Kind == NodeLoop && nodes[i].LoopID == loopID {
			root = i
		}
	}
	return &SubPEG{LoopID: loopID, G: sub, Nodes: nodes, Root: root}
}

// ExtractAll returns sub-PEGs for every loop, in loop-ID order.
func (p *PEG) ExtractAll() []*SubPEG {
	var out []*SubPEG
	for _, id := range p.Prog.LoopIDs() {
		out = append(out, p.Extract(id))
	}
	return out
}

// DOT renders the PEG in Graphviz format.
func (p *PEG) DOT(name string) string {
	return p.G.DOT(name,
		func(v int) string { return p.Nodes[v].Label() },
		func(e graph.Edge) string { return EdgeKindName(e.Kind) })
}

// DOT renders a sub-PEG in Graphviz format.
func (s *SubPEG) DOT(name string) string {
	return s.G.DOT(name,
		func(v int) string { return s.Nodes[v].Label() },
		func(e graph.Edge) string { return EdgeKindName(e.Kind) })
}
