package peg_test

import (
	"strings"
	"testing"

	"mvpar/internal/cu"
	"mvpar/internal/deps"
	"mvpar/internal/interp"
	"mvpar/internal/ir"
	"mvpar/internal/minic"
	"mvpar/internal/peg"
)

func buildPEG(t *testing.T, src string) (*peg.PEG, *ir.Program) {
	t.Helper()
	prog := ir.MustLower(minic.MustParse("t", src))
	res, _, err := deps.Analyze(prog, "main", interp.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	return peg.Build(prog, cu.Build(prog), res), prog
}

const pipelineSrc = `
float a[8];
float b[8];
float s;
void main() {
    for (int i = 0; i < 8; i++) { a[i] = i; }
    for (int i = 0; i < 8; i++) { b[i] = a[i] * 2.0; }
    for (int i = 0; i < 8; i++) { s += b[i]; }
}
`

func TestPEGNodeInventory(t *testing.T) {
	p, prog := buildPEG(t, pipelineSrc)
	var funcs, loops, cus int
	for _, n := range p.Nodes {
		switch n.Kind {
		case peg.NodeFunc:
			funcs++
		case peg.NodeLoop:
			loops++
		case peg.NodeCU:
			cus++
		}
	}
	if funcs != 1 || loops != 3 {
		t.Fatalf("funcs=%d loops=%d", funcs, loops)
	}
	if cus != len(p.CUs.CUs) || cus == 0 {
		t.Fatalf("cu nodes = %d", cus)
	}
	if p.G.NumNodes() != funcs+loops+cus {
		t.Fatal("node count mismatch")
	}
	for _, loopID := range prog.LoopIDs() {
		if _, ok := p.ByLoop[loopID]; !ok {
			t.Fatalf("loop %d missing from PEG", loopID)
		}
	}
}

func TestPEGHierarchy(t *testing.T) {
	p, prog := buildPEG(t, pipelineSrc)
	fnNode := p.ByFunc["main"]
	for _, loopID := range prog.LoopIDs() {
		if !p.G.HasEdgeKind(fnNode, p.ByLoop[loopID], peg.EdgeHierarchy) {
			t.Fatalf("function -> loop %d hierarchy edge missing", loopID)
		}
	}
	// Every CU inside a loop hangs off its innermost loop node.
	for _, c := range p.CUs.CUs {
		child := p.ByStmt[c.StmtID]
		if c.LoopID != 0 {
			if !p.G.HasEdgeKind(p.ByLoop[c.LoopID], child, peg.EdgeHierarchy) {
				t.Fatalf("loop %d -> cu %d edge missing", c.LoopID, c.StmtID)
			}
		}
	}
}

func TestPEGNestedHierarchy(t *testing.T) {
	p, prog := buildPEG(t, `
float A[4][4];
void main() {
    for (int i = 0; i < 4; i++) {
        for (int j = 0; j < 4; j++) {
            A[i][j] = i;
        }
    }
}
`)
	ids := prog.LoopIDs()
	if !p.G.HasEdgeKind(p.ByLoop[ids[0]], p.ByLoop[ids[1]], peg.EdgeHierarchy) {
		t.Fatal("outer loop -> inner loop hierarchy edge missing")
	}
	if p.G.HasEdgeKind(p.ByFunc["main"], p.ByLoop[ids[1]], peg.EdgeHierarchy) {
		t.Fatal("inner loop must not hang off the function node")
	}
}

func TestPEGDependenceEdges(t *testing.T) {
	p, _ := buildPEG(t, pipelineSrc)
	var raw, rawCarried int
	for _, e := range p.G.Edges() {
		switch e.Kind {
		case peg.EdgeRAW:
			raw++
		case peg.EdgeRAWCarried:
			rawCarried++
		}
	}
	if raw == 0 {
		t.Fatal("no loop-independent RAW edges (a[i] producer->consumer)")
	}
	if rawCarried == 0 {
		t.Fatal("no carried RAW edges (reduction accumulator)")
	}
}

func TestSubPEGExtraction(t *testing.T) {
	p, prog := buildPEG(t, pipelineSrc)
	subs := p.ExtractAll()
	if len(subs) != 3 {
		t.Fatalf("sub-PEGs = %d", len(subs))
	}
	for i, sub := range subs {
		if sub.LoopID != prog.LoopIDs()[i] {
			t.Fatalf("sub %d loop = %d", i, sub.LoopID)
		}
		if sub.Nodes[sub.Root].Kind != peg.NodeLoop || sub.Nodes[sub.Root].LoopID != sub.LoopID {
			t.Fatalf("sub %d root is not its loop node", i)
		}
		if sub.G.NumNodes() < 3 {
			t.Fatalf("sub %d suspiciously small: %d nodes", i, sub.G.NumNodes())
		}
		// No function nodes inside a loop sub-PEG.
		for _, n := range sub.Nodes {
			if n.Kind == peg.NodeFunc {
				t.Fatal("function node leaked into sub-PEG")
			}
		}
	}
	// The reduction loop's sub-PEG must contain a carried RAW edge; the
	// first (independent) loop's must not.
	hasCarried := func(s *peg.SubPEG) bool {
		for _, e := range s.G.Edges() {
			if e.Kind == peg.EdgeRAWCarried {
				return true
			}
		}
		return false
	}
	if hasCarried(subs[0]) {
		// The init loop still carries the i++ self-dependence; only
		// non-control carried RAW edges would be a modeling bug, but the
		// control variable's statements live in the sub-PEG too. Accept
		// carried edges here — the verdict, not the raw edge set, encodes
		// parallelizability.
		t.Log("init loop has carried edges (control variable); acceptable")
	}
	if !hasCarried(subs[2]) {
		t.Fatal("reduction loop sub-PEG lost its carried RAW edge")
	}
}

func TestSubPEGIncludesCalleeCUs(t *testing.T) {
	p, prog := buildPEG(t, `
float a[4];
float twice(float x) {
    float t = x + x;
    return t;
}
void main() {
    for (int i = 0; i < 4; i++) { a[i] = twice(a[i]); }
}
`)
	sub := p.Extract(prog.LoopIDs()[0])
	foundHelperCU := false
	for _, n := range sub.Nodes {
		if n.Kind == peg.NodeCU && n.CU.Func == "twice" {
			foundHelperCU = true
		}
	}
	if !foundHelperCU {
		t.Fatal("sub-PEG missing callee CUs")
	}
}

func TestDOTOutputs(t *testing.T) {
	p, prog := buildPEG(t, pipelineSrc)
	dot := p.DOT("peg")
	for _, want := range []string{"digraph", "fn:main", "loop", "cu"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("PEG DOT missing %q", want)
		}
	}
	sub := p.Extract(prog.LoopIDs()[0]).DOT("sub")
	if !strings.Contains(sub, "digraph") || !strings.Contains(sub, "child") {
		t.Fatalf("sub DOT malformed:\n%s", sub)
	}
}
