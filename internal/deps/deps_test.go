package deps_test

import (
	"testing"

	"mvpar/internal/deps"
	"mvpar/internal/interp"
	"mvpar/internal/ir"
	"mvpar/internal/minic"
)

// analyze profiles the program's main and returns the result.
func analyze(t *testing.T, src string) (*deps.Result, *ir.Program) {
	t.Helper()
	prog := ir.MustLower(minic.MustParse("t", src))
	res, _, err := deps.Analyze(prog, "main", interp.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	return res, prog
}

// verdictOfFirstLoop returns the verdict of the program's first loop.
func verdictOfFirstLoop(t *testing.T, src string) deps.Verdict {
	t.Helper()
	res, prog := analyze(t, src)
	ids := prog.LoopIDs()
	if len(ids) == 0 {
		t.Fatal("no loops in program")
	}
	return res.Verdicts[ids[0]]
}

func TestDoAllLoopParallelizable(t *testing.T) {
	v := verdictOfFirstLoop(t, `
float a[16];
float b[16];
void main() {
    for (int i = 0; i < 16; i++) { a[i] = b[i] + 1.0; }
}
`)
	if !v.Parallelizable || v.HasReduction {
		t.Fatalf("verdict = %+v, want parallelizable without reduction", v)
	}
}

func TestSumReductionParallelizable(t *testing.T) {
	v := verdictOfFirstLoop(t, `
float a[16];
float s;
void main() {
    for (int i = 0; i < 16; i++) { s += a[i]; }
}
`)
	if !v.Parallelizable || !v.HasReduction {
		t.Fatalf("verdict = %+v, want parallelizable with reduction", v)
	}
}

func TestProductReductionParallelizable(t *testing.T) {
	v := verdictOfFirstLoop(t, `
float p;
void main() {
    p = 1.0;
    for (int i = 0; i < 8; i++) { p *= 1.5; }
}
`)
	if !v.Parallelizable || !v.HasReduction {
		t.Fatalf("verdict = %+v", v)
	}
}

func TestTrueRecurrenceBlocked(t *testing.T) {
	v := verdictOfFirstLoop(t, `
float a[16];
void main() {
    a[0] = 1.0;
    for (int i = 1; i < 16; i++) { a[i] = a[i - 1] * 2.0; }
}
`)
	if v.Parallelizable {
		t.Fatalf("recurrence must block: %+v", v)
	}
}

func TestInPlaceStencilBlocked(t *testing.T) {
	v := verdictOfFirstLoop(t, `
float a[16];
void main() {
    for (int i = 1; i < 15; i++) { a[i] = a[i - 1] + a[i + 1]; }
}
`)
	if v.Parallelizable {
		t.Fatalf("in-place stencil must block: %+v", v)
	}
}

func TestOutOfPlaceStencilParallelizable(t *testing.T) {
	v := verdictOfFirstLoop(t, `
float a[16];
float b[16];
void main() {
    for (int i = 1; i < 15; i++) { b[i] = a[i - 1] + a[i] + a[i + 1]; }
}
`)
	if !v.Parallelizable {
		t.Fatalf("jacobi-style stencil must be parallelizable: %+v", v)
	}
}

func TestPrivatizableScalarParallelizable(t *testing.T) {
	v := verdictOfFirstLoop(t, `
float a[16];
float b[16];
void main() {
    float t;
    for (int i = 0; i < 16; i++) {
        t = a[i] * 2.0;
        b[i] = t + 1.0;
    }
}
`)
	if !v.Parallelizable {
		t.Fatalf("privatizable temp must not block: %+v", v)
	}
}

func TestExposedScalarReadBlocked(t *testing.T) {
	// t carries a value from the previous iteration before being rewritten.
	v := verdictOfFirstLoop(t, `
float a[16];
float b[16];
void main() {
    float t = 0.0;
    for (int i = 0; i < 16; i++) {
        b[i] = t;
        t = a[i];
    }
}
`)
	if v.Parallelizable {
		t.Fatalf("exposed read then write must block (loop-carried WAR/RAW): %+v", v)
	}
}

func TestPoisonedReductionBlocked(t *testing.T) {
	// Reading the running sum makes the reduction exemption invalid.
	v := verdictOfFirstLoop(t, `
float a[16];
float b[16];
float s;
void main() {
    for (int i = 0; i < 16; i++) {
        s += a[i];
        b[i] = s;
    }
}
`)
	if v.Parallelizable {
		t.Fatalf("prefix-sum must block: %+v", v)
	}
}

func TestIndirectNonReductionUpdateBlocked(t *testing.T) {
	v := verdictOfFirstLoop(t, `
float a[8];
int idx[8];
void main() {
    idx[0] = 1; idx[1] = 1; idx[2] = 2; idx[3] = 3;
    idx[4] = 3; idx[5] = 5; idx[6] = 6; idx[7] = 1;
    for (int i = 0; i < 8; i++) {
        a[idx[i]] = a[idx[i]] * 2.0 + 1.0;
    }
}
`)
	if v.Parallelizable {
		t.Fatalf("colliding indirect update must block: %+v", v)
	}
}

func TestHistogramReductionParallelizable(t *testing.T) {
	// a[idx[i]] += 1 is a recognized (atomic-style) sum reduction even with
	// colliding indices.
	v := verdictOfFirstLoop(t, `
float a[8];
int idx[8];
void main() {
    idx[0] = 1; idx[1] = 1; idx[2] = 2; idx[3] = 3;
    idx[4] = 3; idx[5] = 5; idx[6] = 6; idx[7] = 1;
    for (int i = 0; i < 8; i++) {
        a[idx[i]] += 1.0;
    }
}
`)
	if !v.Parallelizable || !v.HasReduction {
		t.Fatalf("histogram += must be a reduction: %+v", v)
	}
}

func TestCollidingIndirectWriteBlocked(t *testing.T) {
	v := verdictOfFirstLoop(t, `
float a[8];
int idx[8];
void main() {
    idx[0] = 1; idx[1] = 1; idx[2] = 2; idx[3] = 3;
    idx[4] = 3; idx[5] = 5; idx[6] = 6; idx[7] = 1;
    for (int i = 0; i < 8; i++) {
        a[idx[i]] = i;
    }
}
`)
	if v.Parallelizable {
		t.Fatalf("colliding indirect writes (carried WAW on array) must block: %+v", v)
	}
}

func TestDisjointIndirectWriteParallelizable(t *testing.T) {
	v := verdictOfFirstLoop(t, `
float a[8];
int idx[8];
void main() {
    for (int i = 0; i < 8; i++) { idx[i] = 7 - i; }
    for (int i = 0; i < 8; i++) { a[idx[i]] = i; }
}
`)
	res, prog := analyze(t, `
float a[8];
int idx[8];
void main() {
    for (int i = 0; i < 8; i++) { idx[i] = 7 - i; }
    for (int i = 0; i < 8; i++) { a[idx[i]] = i; }
}
`)
	_ = v
	ids := prog.LoopIDs()
	second := res.Verdicts[ids[1]]
	if !second.Parallelizable {
		t.Fatalf("permutation scatter must be parallelizable: %+v", second)
	}
}

func TestWhileLoopBlocked(t *testing.T) {
	res, prog := analyze(t, `
int n = 10;
int x;
void main() {
    while (x < n) { x++; }
}
`)
	v := res.Verdicts[prog.LoopIDs()[0]]
	if v.Parallelizable {
		t.Fatalf("while counter loop must block (condition reads the accumulator): %+v", v)
	}
}

func TestNestedLoopsIndependentVerdicts(t *testing.T) {
	res, prog := analyze(t, `
float A[8][8];
float y[8];
void main() {
    for (int i = 0; i < 8; i++) {
        float s = 0.0;
        for (int j = 0; j < 8; j++) {
            s += A[i][j];
        }
        y[i] = s;
    }
}
`)
	ids := prog.LoopIDs()
	outer, inner := res.Verdicts[ids[0]], res.Verdicts[ids[1]]
	if !outer.Parallelizable {
		t.Fatalf("outer loop must be parallelizable: %+v", outer)
	}
	if outer.HasReduction {
		t.Fatalf("outer loop is not itself a reduction: %+v", outer)
	}
	if !inner.Parallelizable || !inner.HasReduction {
		t.Fatalf("inner loop must be a reduction: %+v", inner)
	}
}

func TestCalledFunctionLocalsDoNotAlias(t *testing.T) {
	res, prog := analyze(t, `
float a[8];
float b[8];
float square(float x) {
    float tmp = x * x;
    return tmp;
}
void main() {
    for (int i = 0; i < 8; i++) { b[i] = square(a[i]); }
}
`)
	v := res.Verdicts[prog.LoopIDs()[0]]
	if !v.Parallelizable {
		t.Fatalf("per-call locals must not create carried deps: %+v", v)
	}
}

func TestSequentialDependentCallsBlocked(t *testing.T) {
	res, prog := analyze(t, `
float acc;
float bump(float x) {
    acc = acc + x;
    return acc;
}
float out[8];
void main() {
    for (int i = 0; i < 8; i++) { out[i] = bump(1.0); }
}
`)
	v := res.Verdicts[prog.LoopIDs()[0]]
	if v.Parallelizable {
		t.Fatalf("global state threaded through calls must block: %+v", v)
	}
}

func TestEdgesRecorded(t *testing.T) {
	res, _ := analyze(t, `
float a[8];
float s;
void main() {
    for (int i = 0; i < 8; i++) { a[i] = i; }
    for (int i = 0; i < 8; i++) { s += a[i]; }
}
`)
	var sawIndependentRAW, sawCarriedRAW, sawReduction bool
	for _, e := range res.Edges {
		if e.Kind == deps.RAW && !e.Carried {
			sawIndependentRAW = true
		}
		if e.Kind == deps.RAW && e.Carried {
			sawCarriedRAW = true
			if e.Reduction {
				sawReduction = true
			}
		}
	}
	if !sawIndependentRAW {
		t.Fatal("no loop-independent RAW edge recorded (producer->consumer across loops)")
	}
	if !sawCarriedRAW || !sawReduction {
		t.Fatalf("carried/reduction RAW edges missing (carried=%v red=%v)", sawCarriedRAW, sawReduction)
	}
	// Edges must be sorted and unique.
	for i := 1; i < len(res.Edges); i++ {
		a, b := res.Edges[i-1], res.Edges[i]
		if a == b {
			t.Fatal("duplicate edge")
		}
	}
}

func TestNeverExecutedLoopDefaultsParallelizable(t *testing.T) {
	res, prog := analyze(t, `
float a[4];
int n;
void main() {
    for (int i = 0; i < n; i++) { a[i] = a[i - 1]; }
}
`)
	// n == 0: body never runs, so no dependence evidence exists.
	v := res.Verdicts[prog.LoopIDs()[0]]
	if !v.Parallelizable {
		t.Fatalf("unexecuted loop should default to parallelizable (no evidence): %+v", v)
	}
}

func TestIterationStatsExposed(t *testing.T) {
	res, prog := analyze(t, `
float a[6];
void main() {
    for (int r = 0; r < 3; r++) {
        for (int i = 0; i < 6; i++) { a[i] = i; }
    }
}
`)
	ids := prog.LoopIDs()
	if res.Iterations[ids[0]] != 3 || res.Iterations[ids[1]] != 18 {
		t.Fatalf("iterations = %v", res.Iterations)
	}
	if res.Instances[ids[0]] != 1 || res.Instances[ids[1]] != 3 {
		t.Fatalf("instances = %v", res.Instances)
	}
}

func TestTriangularLoopParallelizable(t *testing.T) {
	res, prog := analyze(t, `
float A[8][8];
void main() {
    for (int i = 0; i < 8; i++) {
        for (int j = 0; j <= i; j++) {
            A[i][j] = i + j;
        }
    }
}
`)
	for _, id := range prog.LoopIDs() {
		if !res.Verdicts[id].Parallelizable {
			t.Fatalf("triangular independent writes must be parallelizable: %+v", res.Verdicts[id])
		}
	}
}

func TestWavefrontBlocked(t *testing.T) {
	res, prog := analyze(t, `
float A[8][8];
void main() {
    for (int i = 1; i < 8; i++) {
        for (int j = 1; j < 8; j++) {
            A[i][j] = A[i - 1][j] + A[i][j - 1];
        }
    }
}
`)
	ids := prog.LoopIDs()
	if res.Verdicts[ids[0]].Parallelizable {
		t.Fatal("outer wavefront loop must block (row dependence)")
	}
	if res.Verdicts[ids[1]].Parallelizable {
		t.Fatal("inner wavefront loop must block (column dependence)")
	}
}

func TestCarriedDistances(t *testing.T) {
	res, _ := analyze(t, `
float a[16];
void main() {
    a[0] = 1.0; a[1] = 1.0; a[2] = 1.0;
    for (int i = 3; i < 16; i++) { a[i] = a[i - 3] + 1.0; }
}
`)
	foundDist3 := false
	for _, e := range res.Edges {
		if e.Kind == deps.RAW && e.Carried && e.Distance == 3 {
			foundDist3 = true
		}
		if e.Carried && e.Distance == 0 {
			t.Fatalf("carried edge with zero distance: %+v", e)
		}
		if !e.Carried && e.Distance != 0 {
			t.Fatalf("independent edge with distance: %+v", e)
		}
	}
	if !foundDist3 {
		t.Fatal("stride-3 recurrence must produce a carried RAW at distance 3")
	}
}

func TestAdjacentDistanceIsOne(t *testing.T) {
	res, _ := analyze(t, `
float a[16];
void main() {
    a[0] = 1.0;
    for (int i = 1; i < 16; i++) { a[i] = a[i - 1] + 1.0; }
}
`)
	for _, e := range res.Edges {
		if e.Kind == deps.RAW && e.Carried && !e.Reduction && e.Distance != 1 {
			t.Fatalf("first-order recurrence distance = %d, want 1 (%+v)", e.Distance, e)
		}
	}
}
