// Package deps performs dynamic data-dependence analysis over the
// instrumentation stream emitted by internal/interp, the analogue of
// DiscoPoP's phase-1 dependence extraction. It produces:
//
//   - statement-level dependence edges (RAW/WAR/WAW, loop-carried or not),
//     which become the edges of the program execution graph, and
//   - a per-loop parallelizability verdict (the oracle label): a loop is
//     DoALL-parallelizable when every loop-carried dependence is either a
//     recognized reduction or removable by privatization.
//
// The analyzer is an online shadow-memory pass: per address it keeps the
// last write and the reads since that write, each with a snapshot of the
// dynamic loop stack, so every dependence can be attributed to the unique
// loop that carries it (the outermost shared loop instance whose iteration
// numbers differ).
package deps

import (
	"context"
	"fmt"
	"sort"

	"mvpar/internal/interp"
	"mvpar/internal/ir"
	"mvpar/internal/obs"
)

// Kind is a dependence kind.
type Kind int

// Dependence kinds.
const (
	RAW Kind = iota // read after write (true/flow dependence)
	WAR             // write after read (anti dependence)
	WAW             // write after write (output dependence)
)

func (k Kind) String() string {
	switch k {
	case RAW:
		return "RAW"
	case WAR:
		return "WAR"
	default:
		return "WAW"
	}
}

// Edge is a statement-level dependence: the statement DstStmt depends on
// SrcStmt. Carrier is the loop ID carrying the dependence, or 0 with
// Carried false for a loop-independent dependence.
type Edge struct {
	Kind      Kind
	SrcStmt   int
	DstStmt   int
	Carried   bool
	Carrier   int
	Reduction bool // both endpoints are reduction-tagged with the same kind
	// Distance is the smallest iteration distance observed for a carried
	// dependence (1 = adjacent iterations); 0 for loop-independent edges.
	Distance int64
}

// Verdict is the oracle decision for one loop.
type Verdict struct {
	LoopID         int
	Parallelizable bool
	HasReduction   bool     // parallelizable via a recognized reduction
	Reasons        []string // human-readable blocking reasons (empty if parallelizable)
	Detail         Detail
}

// Detail exposes the individual evidence classes behind a verdict so
// alternative decision rules (the tool emulators in internal/tools) can be
// derived from the same measurement.
type Detail struct {
	LCRawBad    bool // non-reduction loop-carried RAW present
	LCWarBad    bool // exposed-read loop-carried WAR present
	LCWawArray  bool // loop-carried WAW on array elements present
	HasRed      bool // reduction-paired carried RAW present
	RedPoisoned bool // a reduction location is also accessed outside the reduction
}

// Result is the outcome of analyzing one execution.
type Result struct {
	Edges    []Edge
	Verdicts map[int]Verdict
	// Iterations and Instances mirror the interpreter's loop statistics.
	Iterations map[int]int64
	Instances  map[int]int64
}

// accessRec is a snapshot of one dynamic access kept in shadow memory.
type accessRec struct {
	stmt    int
	red     ir.RedOp
	array   bool
	frames  []frameSnap
	exposed uint64 // bit i set: read not preceded by a same-iteration write of frames[i]
}

type frameSnap struct {
	id       int
	instance int64
	iter     int64
}

// cell is the shadow state for one address.
type cell struct {
	lastWrite *accessRec
	reads     []accessRec
}

// maxReadsPerCell bounds the reads kept between two writes of the same
// address; beyond it the oldest are dropped (ring). With the corpus's
// small kernels the cap is rarely reached, and any surviving cross-
// iteration read still flags the WAR.
const maxReadsPerCell = 256

type edgeKey struct {
	kind     Kind
	src, dst int
	carrier  int
	carried  bool
}

// Analyzer implements interp.Tracer.
type Analyzer struct {
	shadow map[uint64]*cell
	edges  map[edgeKey]*Edge

	// Per-loop blocking state, keyed by loop ID then address.
	lcRawBad    map[int]map[uint64]bool
	lcRawRed    map[int]map[uint64]ir.RedOp
	lcWarBad    map[int]map[uint64]bool
	lcWawArray  map[int]map[uint64]bool
	nonRedTouch map[int]map[uint64]bool
	ctrlAddrs   map[int]map[uint64]bool

	iterations map[int]int64
	instances  map[int]int64
}

// NewAnalyzer returns an empty analyzer ready to trace one execution.
func NewAnalyzer() *Analyzer {
	return &Analyzer{
		shadow:      map[uint64]*cell{},
		edges:       map[edgeKey]*Edge{},
		lcRawBad:    map[int]map[uint64]bool{},
		lcRawRed:    map[int]map[uint64]ir.RedOp{},
		lcWarBad:    map[int]map[uint64]bool{},
		lcWawArray:  map[int]map[uint64]bool{},
		nonRedTouch: map[int]map[uint64]bool{},
		ctrlAddrs:   map[int]map[uint64]bool{},
		iterations:  map[int]int64{},
		instances:   map[int]int64{},
	}
}

func mark2(m map[int]map[uint64]bool, loop int, addr uint64) {
	inner := m[loop]
	if inner == nil {
		inner = map[uint64]bool{}
		m[loop] = inner
	}
	inner[addr] = true
}

// LoopEnter implements interp.Tracer.
func (a *Analyzer) LoopEnter(id int, instance int64, ctrlAddr uint64, hasCtrl bool) {
	a.instances[id]++
	if hasCtrl {
		mark2(a.ctrlAddrs, id, ctrlAddr)
	}
}

// LoopIter implements interp.Tracer.
func (a *Analyzer) LoopIter(id int, instance, iter int64) { a.iterations[id]++ }

// LoopExit implements interp.Tracer.
func (a *Analyzer) LoopExit(id int, instance, iters int64) {}

// snapshot copies the live loop stack.
func snapshot(frames []interp.LoopFrame) []frameSnap {
	s := make([]frameSnap, len(frames))
	for i, f := range frames {
		s[i] = frameSnap{id: f.ID, instance: f.Instance, iter: f.Iter}
	}
	return s
}

// carrierIndex finds the index of the loop carrying a dependence between
// two accesses: the first shared loop instance whose iterations differ.
// It returns -1 when the accesses are iteration-local everywhere.
func carrierIndex(a, b []frameSnap) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i].instance != b[i].instance {
			return -1
		}
		if a[i].iter != b[i].iter {
			return i
		}
	}
	return -1
}

func (a *Analyzer) isCtrl(loop int, addr uint64) bool {
	return a.ctrlAddrs[loop][addr]
}

func (a *Analyzer) recordEdge(kind Kind, src, dst *accessRec, carrier int, carried bool, reduction bool, distance int64) {
	key := edgeKey{kind: kind, src: src.stmt, dst: dst.stmt, carrier: carrier, carried: carried}
	e, ok := a.edges[key]
	if !ok {
		a.edges[key] = &Edge{
			Kind: kind, SrcStmt: src.stmt, DstStmt: dst.stmt,
			Carried: carried, Carrier: carrier, Reduction: reduction,
			Distance: distance,
		}
		return
	}
	if carried && distance > 0 && (e.Distance == 0 || distance < e.Distance) {
		e.Distance = distance
	}
}

// carriedDistance returns the absolute iteration distance at index ci.
func carriedDistance(a, b []frameSnap, ci int) int64 {
	d := b[ci].iter - a[ci].iter
	if d < 0 {
		d = -d
	}
	return d
}

// Access implements interp.Tracer.
func (a *Analyzer) Access(acc *interp.Access) {
	c := a.shadow[acc.Addr]
	if c == nil {
		c = &cell{}
		a.shadow[acc.Addr] = c
	}
	rec := accessRec{
		stmt:   acc.StmtID,
		red:    acc.Red,
		array:  false,
		frames: snapshot(acc.Frames),
	}
	// Array-ness travels via the Access (set by the interpreter for
	// subscripted instructions).
	rec.array = acc.Array

	// Every non-reduction access inside a loop poisons reduction locations.
	if acc.Red == ir.RedNone {
		for _, f := range rec.frames {
			if !a.isCtrl(f.id, acc.Addr) {
				mark2(a.nonRedTouch, f.id, acc.Addr)
			}
		}
	}

	if !acc.Write {
		a.onRead(acc.Addr, c, &rec)
		if len(c.reads) >= maxReadsPerCell {
			copy(c.reads, c.reads[1:])
			c.reads = c.reads[:len(c.reads)-1]
		}
		c.reads = append(c.reads, rec)
		return
	}
	a.onWrite(acc.Addr, c, &rec)
	c.lastWrite = &rec
	c.reads = c.reads[:0]
}

func (a *Analyzer) onRead(addr uint64, c *cell, rec *accessRec) {
	w := c.lastWrite
	if w == nil {
		// Never written: exposed with respect to every enclosing loop.
		rec.exposed = ^uint64(0)
		return
	}
	ci := carrierIndex(w.frames, rec.frames)
	// Exposure per enclosing loop: the read is exposed w.r.t. loop level i
	// unless the last write happened in the same iteration of that loop.
	for i := range rec.frames {
		sameIter := i < len(w.frames) &&
			w.frames[i].instance == rec.frames[i].instance &&
			w.frames[i].iter == rec.frames[i].iter
		if !sameIter {
			rec.exposed |= 1 << uint(i)
		}
	}
	if ci < 0 {
		a.recordEdge(RAW, w, rec, 0, false, false, 0)
		return
	}
	loop := rec.frames[ci].id
	redPair := w.red != ir.RedNone && w.red == rec.red
	a.recordEdge(RAW, w, rec, loop, true, redPair, carriedDistance(w.frames, rec.frames, ci))
	if a.isCtrl(loop, addr) {
		return
	}
	if redPair {
		inner := a.lcRawRed[loop]
		if inner == nil {
			inner = map[uint64]ir.RedOp{}
			a.lcRawRed[loop] = inner
		}
		inner[addr] = rec.red
	} else {
		mark2(a.lcRawBad, loop, addr)
	}
}

func (a *Analyzer) onWrite(addr uint64, c *cell, rec *accessRec) {
	if w := c.lastWrite; w != nil {
		ci := carrierIndex(w.frames, rec.frames)
		if ci < 0 {
			a.recordEdge(WAW, w, rec, 0, false, false, 0)
		} else {
			loop := rec.frames[ci].id
			redPair := w.red != ir.RedNone && w.red == rec.red
			a.recordEdge(WAW, w, rec, loop, true, redPair, carriedDistance(w.frames, rec.frames, ci))
			if !a.isCtrl(loop, addr) && !redPair && rec.array {
				// Carried output dependences on array elements change the
				// final memory image under parallel execution; scalars are
				// privatizable.
				mark2(a.lcWawArray, loop, addr)
			}
		}
	}
	for i := range c.reads {
		r := &c.reads[i]
		ci := carrierIndex(r.frames, rec.frames)
		if ci < 0 {
			a.recordEdge(WAR, r, rec, 0, false, false, 0)
			continue
		}
		loop := rec.frames[ci].id
		redPair := r.red != ir.RedNone && r.red == rec.red
		a.recordEdge(WAR, r, rec, loop, true, redPair, carriedDistance(r.frames, rec.frames, ci))
		if a.isCtrl(loop, addr) || redPair {
			continue
		}
		if r.exposed&(1<<uint(ci)) != 0 {
			// The earlier iteration read a value the later iteration
			// overwrites, and that read was not satisfied by its own
			// iteration: privatization cannot remove this dependence.
			mark2(a.lcWarBad, loop, addr)
		}
	}
}

// Finalize computes the per-loop verdicts. loops lists every loop ID of
// the program (including loops that never executed, which are reported as
// parallelizable=false with reason "never executed" only when
// requireExecution is true; otherwise they default to parallelizable).
func (a *Analyzer) Finalize(prog *ir.Program) *Result {
	res := &Result{
		Verdicts:   map[int]Verdict{},
		Iterations: a.iterations,
		Instances:  a.instances,
	}
	for key := range a.edges {
		res.Edges = append(res.Edges, *a.edges[key])
	}
	sort.Slice(res.Edges, func(i, j int) bool {
		ei, ej := res.Edges[i], res.Edges[j]
		if ei.SrcStmt != ej.SrcStmt {
			return ei.SrcStmt < ej.SrcStmt
		}
		if ei.DstStmt != ej.DstStmt {
			return ei.DstStmt < ej.DstStmt
		}
		if ei.Kind != ej.Kind {
			return ei.Kind < ej.Kind
		}
		return ei.Carrier < ej.Carrier
	})

	for _, id := range prog.LoopIDs() {
		v := Verdict{LoopID: id, Parallelizable: true}
		reason := func(format string, n int) {
			v.Parallelizable = false
			noun := "locations"
			if n == 1 {
				noun = "location"
			}
			v.Reasons = append(v.Reasons, fmt.Sprintf(format, n, noun))
		}
		if n := len(a.lcRawBad[id]); n > 0 {
			v.Detail.LCRawBad = true
			reason("loop-carried RAW on %d %s", n)
		}
		if n := len(a.lcWarBad[id]); n > 0 {
			v.Detail.LCWarBad = true
			reason("loop-carried WAR (exposed read) on %d %s", n)
		}
		if n := len(a.lcWawArray[id]); n > 0 {
			v.Detail.LCWawArray = true
			reason("loop-carried WAW on %d array %s", n)
		}
		poisoned := 0
		for addr := range a.lcRawRed[id] {
			v.Detail.HasRed = true
			if a.nonRedTouch[id][addr] {
				poisoned++
			} else {
				v.HasReduction = true
			}
		}
		if poisoned > 0 {
			v.Detail.RedPoisoned = true
			reason("reduction accumulator read/written outside the reduction at %d %s", poisoned)
		}
		if !v.Parallelizable {
			v.HasReduction = false
		}
		sort.Strings(v.Reasons)
		res.Verdicts[id] = v
	}
	return res
}

// Analyze profiles prog's entry function and returns the dependence result
// together with the interpreter statistics. Execution budgets default per
// interp.Limits; pass interp.Limits{} for the pipeline-wide defaults.
func Analyze(prog *ir.Program, entry string, limits interp.Limits) (*Result, interp.Stats, error) {
	return AnalyzeContext(context.Background(), prog, entry, limits)
}

// AnalyzeContext is Analyze with cancellation: a done ctx aborts the
// profiled execution at the interpreter's instruction-stride check with
// an error wrapping both interp.ErrCancelled and ctx.Err(). An explicit
// limits.Ctx takes precedence over ctx.
func AnalyzeContext(ctx context.Context, prog *ir.Program, entry string, limits interp.Limits) (*Result, interp.Stats, error) {
	if limits.Ctx == nil && ctx != nil && ctx != context.Background() {
		limits.Ctx = ctx
	}
	defer obs.Start("deps.analyze").End()
	an := NewAnalyzer()
	mt := &interp.MetricsTracer{}
	it := interp.New(prog, interp.MultiTracer{an, mt}, limits)
	stats, err := it.Run(entry)
	mt.Flush()
	if err != nil {
		return nil, stats, err
	}
	res := an.Finalize(prog)
	recordResultStats(prog.Name, res)
	return res, stats, nil
}

// recordResultStats publishes one analysis' dependence-edge and verdict
// counts to the metrics registry.
func recordResultStats(program string, res *Result) {
	var raw, war, waw, carried int64
	for _, e := range res.Edges {
		switch e.Kind {
		case RAW:
			raw++
		case WAR:
			war++
		default:
			waw++
		}
		if e.Carried {
			carried++
		}
	}
	par, seq := 0, 0
	for _, v := range res.Verdicts {
		if v.Parallelizable {
			par++
		} else {
			seq++
		}
	}
	obs.GetCounter("mvpar_deps_analyses_total").Inc()
	obs.GetCounter("mvpar_deps_raw_edges_total").Add(raw)
	obs.GetCounter("mvpar_deps_war_edges_total").Add(war)
	obs.GetCounter("mvpar_deps_waw_edges_total").Add(waw)
	obs.GetCounter("mvpar_deps_carried_edges_total").Add(carried)
	obs.GetCounter("mvpar_deps_parallel_loops_total").Add(int64(par))
	obs.GetCounter("mvpar_deps_sequential_loops_total").Add(int64(seq))
	obs.Debug("deps.analyze", "program", program,
		"raw", raw, "war", war, "waw", waw, "carried", carried,
		"parallel", par, "sequential", seq)
}
