// Package bench generates the MiniC benchmark corpus: one program per
// application of Table II (NPB: BT, SP, LU, IS, EP, CG, MG, FT;
// PolyBench: 2mm, jacobi-2d, syr2k, trmm; BOTS: fib, nqueens), with the
// paper's per-application for-loop counts reproduced exactly. Programs
// are assembled from a library of loop templates whose dependence
// behaviour is the behaviour of the real suites' kernels: DoALL sweeps,
// reductions, out-of-place and in-place stencils, line-solve recurrences,
// wavefronts, prefix sums, histograms, gather/scatter, and recursive task
// kernels.
package bench

import (
	"fmt"
	"math/rand"
	"strings"
)

// N is the array extent used by generated kernels; small enough that a
// full dynamic profile of all 840 loops runs in seconds.
const N = 8

// builder accumulates a program under construction.
type builder struct {
	decls strings.Builder
	funcs strings.Builder
	body  strings.Builder // statements of the current function
	main  strings.Builder // calls emitted into main

	loops   int
	uniq    int
	rng     *rand.Rand
	arrays1 []string // declared 1-D float arrays
	arrays2 []string // declared 2-D float arrays
	scalars []string
	intArrs []string
}

func newBuilder(seed int64) *builder {
	return &builder{rng: rand.New(rand.NewSource(seed))}
}

func (b *builder) fresh(prefix string) string {
	b.uniq++
	return fmt.Sprintf("%s%d", prefix, b.uniq)
}

// arr1 declares (or reuses) a 1-D float array global.
func (b *builder) arr1() string {
	if len(b.arrays1) > 0 && b.rng.Intn(3) != 0 {
		return b.arrays1[b.rng.Intn(len(b.arrays1))]
	}
	name := b.fresh("v")
	fmt.Fprintf(&b.decls, "float %s[%d];\n", name, N)
	b.arrays1 = append(b.arrays1, name)
	return name
}

// newArr1 always declares a fresh 1-D array (for templates that must not
// alias their inputs).
func (b *builder) newArr1() string {
	name := b.fresh("v")
	fmt.Fprintf(&b.decls, "float %s[%d];\n", name, N)
	b.arrays1 = append(b.arrays1, name)
	return name
}

func (b *builder) arr2() string {
	if len(b.arrays2) > 0 && b.rng.Intn(3) != 0 {
		return b.arrays2[b.rng.Intn(len(b.arrays2))]
	}
	return b.newArr2()
}

func (b *builder) newArr2() string {
	name := b.fresh("M")
	fmt.Fprintf(&b.decls, "float %s[%d][%d];\n", name, N, N)
	b.arrays2 = append(b.arrays2, name)
	return name
}

func (b *builder) scalar() string {
	name := b.fresh("s")
	fmt.Fprintf(&b.decls, "float %s;\n", name)
	b.scalars = append(b.scalars, name)
	return name
}

func (b *builder) intArr() string {
	name := b.fresh("idx")
	fmt.Fprintf(&b.decls, "int %s[%d];\n", name, N)
	b.intArrs = append(b.intArrs, name)
	return name
}

func (b *builder) stmt(format string, args ...interface{}) {
	fmt.Fprintf(&b.body, format+"\n", args...)
}

// op picks a float binary operator, the "modify the operation type"
// augmentation axis of the paper.
func (b *builder) op() string {
	return []string{"+", "-", "*"}[b.rng.Intn(3)]
}

// Template is one loop-nest generator. Each emits statements into the
// current function body, incrementing the builder's loop count, and
// states how many for-loops it contributes and whether its outermost loop
// is parallelizable in the oracle's sense.
type Template struct {
	Name  string
	Loops int  // for-loops contributed
	Par   bool // outermost loop parallelizable
	Emit  func(b *builder)
}

// iv returns a fresh induction variable name.
func (b *builder) iv() string { return b.fresh("i") }

// templates is the block library. Every template keeps subscripts in
// bounds for extent N and initializes whatever it reads through another
// template or its own prologue.
var templates = []Template{
	{
		// DoALL sweep: the bread-and-butter parallel loop of every suite.
		Name: "doall1d", Loops: 1, Par: true,
		Emit: func(b *builder) {
			dst, src := b.newArr1(), b.arr1()
			i := b.iv()
			b.stmt("    for (int %s = 0; %s < %d; %s++) { %s[%s] = %s[%s] %s %d.5; }",
				i, i, N, i, dst, i, src, i, b.op(), b.rng.Intn(5))
		},
	},
	{
		// 2-D initialization / elementwise kernel (both loops DoALL).
		Name: "doall2d", Loops: 2, Par: true,
		Emit: func(b *builder) {
			m := b.newArr2()
			i, j := b.iv(), b.iv()
			b.stmt("    for (int %s = 0; %s < %d; %s++) {", i, i, N, i)
			b.stmt("        for (int %s = 0; %s < %d; %s++) { %s[%s][%s] = %s %s %s; }",
				j, j, N, j, m, i, j, i, b.op(), j)
			b.stmt("    }")
		},
	},
	{
		// Scalar sum/product reduction (EP's accumulations, CG's dots).
		Name: "reduce", Loops: 1, Par: true,
		Emit: func(b *builder) {
			s, src := b.scalar(), b.arr1()
			i := b.iv()
			op := []string{"+=", "-="}[b.rng.Intn(2)]
			b.stmt("    for (int %s = 0; %s < %d; %s++) { %s %s %s[%s]; }", i, i, N, i, s, op, src, i)
		},
	},
	{
		// Dot product: reduction over two arrays.
		Name: "dot", Loops: 1, Par: true,
		Emit: func(b *builder) {
			s, a, c := b.scalar(), b.arr1(), b.arr1()
			i := b.iv()
			b.stmt("    for (int %s = 0; %s < %d; %s++) { %s += %s[%s] * %s[%s]; }",
				i, i, N, i, s, a, i, c, i)
		},
	},
	{
		// Out-of-place 1-D stencil (MG smoothers, jacobi sweeps).
		Name: "stencil1d", Loops: 1, Par: true,
		Emit: func(b *builder) {
			dst, src := b.newArr1(), b.arr1()
			i := b.iv()
			b.stmt("    for (int %s = 1; %s < %d; %s++) { %s[%s] = (%s[%s - 1] + %s[%s] + %s[%s + 1]) * 0.333; }",
				i, i, N-1, i, dst, i, src, i, src, i, src, i)
		},
	},
	{
		// Out-of-place 2-D five-point stencil (both loops DoALL).
		Name: "stencil2d", Loops: 2, Par: true,
		Emit: func(b *builder) {
			dst, src := b.newArr2(), b.arr2()
			i, j := b.iv(), b.iv()
			b.stmt("    for (int %s = 1; %s < %d; %s++) {", i, i, N-1, i)
			b.stmt("        for (int %s = 1; %s < %d; %s++) {", j, j, N-1, j)
			b.stmt("            %s[%s][%s] = (%s[%s - 1][%s] + %s[%s + 1][%s] + %s[%s][%s - 1] + %s[%s][%s + 1]) * 0.25;",
				dst, i, j, src, i, j, src, i, j, src, i, j, src, i, j)
			b.stmt("        }")
			b.stmt("    }")
		},
	},
	{
		// In-place stencil: carried RAW and WAR — sequential.
		Name: "stencil-inplace", Loops: 1, Par: false,
		Emit: func(b *builder) {
			a := b.arr1()
			i := b.iv()
			b.stmt("    for (int %s = 1; %s < %d; %s++) { %s[%s] = %s[%s - 1] %s %s[%s + 1]; }",
				i, i, N-1, i, a, i, a, i, b.op(), a, i)
		},
	},
	{
		// First-order recurrence (LU/BT/SP line solves) — sequential.
		Name: "recurrence", Loops: 1, Par: false,
		Emit: func(b *builder) {
			a := b.arr1()
			i := b.iv()
			b.stmt("    %s[0] = 1.0;", a)
			b.stmt("    for (int %s = 1; %s < %d; %s++) { %s[%s] = %s[%s - 1] * 0.5 + %d.0; }",
				i, i, N, i, a, i, a, i, b.rng.Intn(3))
		},
	},
	{
		// Prefix sum (IS key ranking) — sequential.
		Name: "prefix", Loops: 1, Par: false,
		Emit: func(b *builder) {
			a := b.arr1()
			i := b.iv()
			b.stmt("    for (int %s = 1; %s < %d; %s++) { %s[%s] = %s[%s] + %s[%s - 1]; }",
				i, i, N, i, a, i, a, i, a, i)
		},
	},
	{
		// 2-D wavefront (LU's lower-triangular sweeps) — sequential at
		// both levels.
		Name: "wavefront", Loops: 2, Par: false,
		Emit: func(b *builder) {
			m := b.arr2()
			i, j := b.iv(), b.iv()
			b.stmt("    for (int %s = 1; %s < %d; %s++) {", i, i, N, i)
			b.stmt("        for (int %s = 1; %s < %d; %s++) { %s[%s][%s] = %s[%s - 1][%s] + %s[%s][%s - 1]; }",
				j, j, N, j, m, i, j, m, i, j, m, i, j)
			b.stmt("    }")
		},
	},
	{
		// Matrix-vector product: outer DoALL, inner reduction.
		Name: "matvec", Loops: 2, Par: true,
		Emit: func(b *builder) {
			m, x, y := b.arr2(), b.arr1(), b.newArr1()
			i, j := b.iv(), b.iv()
			b.stmt("    for (int %s = 0; %s < %d; %s++) {", i, i, N, i)
			b.stmt("        float acc = 0.0;")
			b.stmt("        for (int %s = 0; %s < %d; %s++) { acc += %s[%s][%s] * %s[%s]; }",
				j, j, N, j, m, i, j, x, j)
			b.stmt("        %s[%s] = acc;", y, i)
			b.stmt("    }")
		},
	},
	{
		// Triangular update (trmm/syr2k shape): all loops DoALL.
		Name: "triangular", Loops: 2, Par: true,
		Emit: func(b *builder) {
			m := b.newArr2()
			i, j := b.iv(), b.iv()
			b.stmt("    for (int %s = 0; %s < %d; %s++) {", i, i, N, i)
			b.stmt("        for (int %s = 0; %s <= %s; %s++) { %s[%s][%s] = %s * 2 + %s; }",
				j, j, i, j, m, i, j, i, j)
			b.stmt("    }")
		},
	},
	{
		// Histogram with a += reduction body (IS bucket counting):
		// parallelizable via (atomic) reduction.
		Name: "histogram-red", Loops: 2, Par: true,
		Emit: func(b *builder) {
			h, idx := b.newArr1(), b.intArr()
			i := b.iv()
			b.stmt("    for (int %s = 0; %s < %d; %s++) { %s[%s] = (%s * 3 + 1) %% %d; }",
				i, i, N, i, idx, i, i, N)
			b.stmt("    for (int %s = 0; %s < %d; %s++) { %s[%s[%s]] += 1.0; }",
				i, i, N, i, h, idx, i)
		},
	},
	{
		// Colliding scatter with a non-reduction update — sequential.
		Name: "scatter-seq", Loops: 2, Par: false,
		Emit: func(b *builder) {
			a, idx := b.arr1(), b.intArr()
			i := b.iv()
			b.stmt("    for (int %s = 0; %s < %d; %s++) { %s[%s] = %s %% %d; }",
				i, i, N, i, idx, i, i, N/2)
			b.stmt("    for (int %s = 0; %s < %d; %s++) { %s[%s[%s]] = %s[%s[%s]] * 0.5 + %s; }",
				i, i, N, i, a, idx, i, a, idx, i, i)
		},
	},
	{
		// Gather through a permutation — parallelizable.
		Name: "gather", Loops: 2, Par: true,
		Emit: func(b *builder) {
			dst, src, idx := b.newArr1(), b.arr1(), b.intArr()
			i := b.iv()
			b.stmt("    for (int %s = 0; %s < %d; %s++) { %s[%s] = %d - 1 - %s; }",
				i, i, N, i, idx, i, N, i)
			b.stmt("    for (int %s = 0; %s < %d; %s++) { %s[%s] = %s[%s[%s]]; }",
				i, i, N, i, dst, i, src, idx, i)
		},
	},
	{
		// Flux update with privatizable temporaries (BT/SP rhs kernels).
		Name: "private-temp", Loops: 1, Par: true,
		Emit: func(b *builder) {
			dst, src := b.newArr1(), b.arr1()
			i := b.iv()
			b.stmt("    for (int %s = 0; %s < %d; %s++) {", i, i, N, i)
			b.stmt("        float t = %s[%s] * 1.5;", src, i)
			b.stmt("        float u = t %s 2.0;", b.op())
			b.stmt("        %s[%s] = t + u;", dst, i)
			b.stmt("    }")
		},
	},
	{
		// Scalar carried across iterations (pipeline-style) — sequential.
		Name: "carried-scalar", Loops: 1, Par: false,
		Emit: func(b *builder) {
			dst, src := b.newArr1(), b.arr1()
			s := b.scalar()
			i := b.iv()
			b.stmt("    for (int %s = 0; %s < %d; %s++) {", i, i, N, i)
			b.stmt("        %s[%s] = %s;", dst, i, s)
			b.stmt("        %s = %s[%s] * 0.5;", s, src, i)
			b.stmt("    }")
		},
	},
	{
		// Strided butterfly update, FT-style (disjoint strided halves).
		Name: "butterfly", Loops: 1, Par: true,
		Emit: func(b *builder) {
			a := b.newArr1()
			i := b.iv()
			b.stmt("    for (int %s = 0; %s < %d; %s++) { %s[2 * %s] = %s[2 * %s + 1] %s 1.0; }",
				i, i, N/2, i, a, i, a, i, b.op())
		},
	},
	{
		// Long intra-iteration chain with private temporaries: high
		// critical-path length yet fully parallelizable — flat feature
		// vectors confuse this with a recurrence.
		Name: "longchain-par", Loops: 1, Par: true,
		Emit: func(b *builder) {
			dst, src := b.newArr1(), b.arr1()
			i := b.iv()
			b.stmt("    for (int %s = 0; %s < %d; %s++) {", i, i, N, i)
			b.stmt("        float t1 = %s[%s] * 2.0;", src, i)
			b.stmt("        float t2 = t1 %s 3.0;", b.op())
			b.stmt("        float t3 = t2 * t1 + 1.0;")
			b.stmt("        float t4 = t3 %s t2;", b.op())
			b.stmt("        %s[%s] = t4 + t3;", dst, i)
			b.stmt("    }")
		},
	},
	{
		// Backward shift: read a[i+1] (exposed) then overwrite it next
		// iteration — a pure loop-carried WAR. Sequential, but invisible
		// to a RAW-only dynamic rule (a DiscoPoP false positive).
		Name: "war-shift", Loops: 1, Par: false,
		Emit: func(b *builder) {
			a := b.arr1()
			i := b.iv()
			b.stmt("    for (int %s = 0; %s < %d; %s++) { %s[%s] = %s[%s + 1] %s 1.5; }",
				i, i, N-1, i, a, i, a, i, b.op())
		},
	},
	{
		// Colliding scatter of pure writes: loop-carried WAW on array
		// elements. Sequential; another RAW-only blind spot.
		Name: "waw-scatter", Loops: 2, Par: false,
		Emit: func(b *builder) {
			a, idx := b.newArr1(), b.intArr()
			i := b.iv()
			b.stmt("    for (int %s = 0; %s < %d; %s++) { %s[%s] = %s %% %d; }",
				i, i, N, i, idx, i, i, N/2)
			b.stmt("    for (int %s = 0; %s < %d; %s++) { %s[%s[%s]] = %s * 1.5; }",
				i, i, N, i, a, idx, i, i)
		},
	},
	{
		// Prefix-exposed reduction: the running sum is stored per element,
		// poisoning the reduction. Sequential; the per-loop dependence
		// counters look almost identical to a clean reduction's.
		Name: "poisoned-reduction", Loops: 1, Par: false,
		Emit: func(b *builder) {
			s, src, dst := b.scalar(), b.arr1(), b.newArr1()
			i := b.iv()
			b.stmt("    for (int %s = 0; %s < %d; %s++) {", i, i, N, i)
			b.stmt("        %s += %s[%s] * 0.5;", s, src, i)
			b.stmt("        %s[%s] = %s;", dst, i, s)
			b.stmt("    }")
		},
	},
	{
		// Flipped accumulator: s = a[i] - s is not a reduction (the old
		// value is negated), yet its feature profile mimics one.
		Name: "antireduction", Loops: 1, Par: false,
		Emit: func(b *builder) {
			s, src := b.scalar(), b.arr1()
			i := b.iv()
			b.stmt("    for (int %s = 0; %s < %d; %s++) { %s = %s[%s] - %s; }",
				i, i, N, i, s, src, i, s)
		},
	},
	{
		// Reversal copy: b[i] = a[N-1-i]; parallel, and a workout for the
		// affine tester's negative coefficients.
		Name: "reverse-copy", Loops: 1, Par: true,
		Emit: func(b *builder) {
			dst, src := b.newArr1(), b.arr1()
			i := b.iv()
			b.stmt("    for (int %s = 0; %s < %d; %s++) { %s[%s] = %s[%d - 1 - %s]; }",
				i, i, N, i, dst, i, src, N, i)
		},
	},
	{
		// Reduction over a 2-D array (norm computations): outer loop is a
		// reduction, inner loop accumulates too.
		Name: "norm2d", Loops: 2, Par: true,
		Emit: func(b *builder) {
			s, m := b.scalar(), b.arr2()
			i, j := b.iv(), b.iv()
			b.stmt("    for (int %s = 0; %s < %d; %s++) {", i, i, N, i)
			b.stmt("        for (int %s = 0; %s < %d; %s++) { %s += %s[%s][%s] * %s[%s][%s]; }",
				j, j, N, j, s, m, i, j, m, i, j)
			b.stmt("    }")
		},
	},
}

// templateByName returns the named template; it panics on unknown names
// (the app profiles are static data, so a miss is a programming error).
func templateByName(name string) Template {
	for _, t := range templates {
		if t.Name == name {
			return t
		}
	}
	panic("bench: unknown template " + name)
}
