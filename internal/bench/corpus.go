package bench

import (
	"fmt"
	"strings"
)

// App is one generated benchmark application.
type App struct {
	Name        string
	Suite       string // "NPB", "PolyBench", "BOTS"
	TargetLoops int    // the paper's Table-II for-loop count
	Source      string // MiniC source
}

// profile describes how an application's loop population is assembled:
// weighted template draws mirroring the suite's kernel mix.
type profile struct {
	name  string
	suite string
	loops int
	seed  int64
	mix   []weighted
}

type weighted struct {
	tpl    string
	weight int
}

// profiles reproduces Table II. Mix weights reflect each application's
// character: BT/SP/LU are stencil + line-solve codes with occasional
// sequential sweeps, IS is ranking/histogram, EP is pure reductions, CG is
// sparse linear algebra, MG is stencils, FT is butterflies, the PolyBench
// kernels are their polyhedral selves, and BOTS is recursive tasking.
var profiles = []profile{
	{name: "BT", suite: "NPB", loops: 184, seed: 101, mix: []weighted{
		{"stencil2d", 4}, {"private-temp", 4}, {"doall2d", 3}, {"matvec", 3},
		{"doall1d", 3}, {"recurrence", 1}, {"norm2d", 1}, {"stencil1d", 2},
		{"longchain-par", 3}, {"war-shift", 1},
	}},
	{name: "SP", suite: "NPB", loops: 252, seed: 102, mix: []weighted{
		{"stencil2d", 4}, {"private-temp", 4}, {"doall2d", 3}, {"stencil1d", 3},
		{"doall1d", 3}, {"recurrence", 1}, {"dot", 2}, {"norm2d", 1},
		{"longchain-par", 3}, {"poisoned-reduction", 1},
	}},
	{name: "LU", suite: "NPB", loops: 173, seed: 103, mix: []weighted{
		{"stencil2d", 3}, {"doall2d", 3}, {"wavefront", 1}, {"recurrence", 1},
		{"private-temp", 3}, {"doall1d", 3}, {"norm2d", 1}, {"matvec", 2},
		{"war-shift", 1}, {"antireduction", 1}, {"longchain-par", 2},
	}},
	{name: "IS", suite: "NPB", loops: 25, seed: 104, mix: []weighted{
		{"histogram-red", 3}, {"prefix", 2}, {"gather", 2}, {"scatter-seq", 1},
		{"doall1d", 3}, {"waw-scatter", 1}, {"poisoned-reduction", 1},
	}},
	{name: "EP", suite: "NPB", loops: 10, seed: 105, mix: []weighted{
		{"reduce", 3}, {"dot", 2}, {"doall1d", 2}, {"antireduction", 1},
	}},
	{name: "CG", suite: "NPB", loops: 32, seed: 106, mix: []weighted{
		{"matvec", 3}, {"dot", 3}, {"doall1d", 2}, {"reduce", 2}, {"gather", 1},
		{"antireduction", 1}, {"longchain-par", 1},
	}},
	{name: "MG", suite: "NPB", loops: 74, seed: 107, mix: []weighted{
		{"stencil2d", 4}, {"stencil1d", 3}, {"doall1d", 2}, {"doall2d", 2},
		{"recurrence", 1}, {"norm2d", 1}, {"war-shift", 1}, {"reverse-copy", 1},
	}},
	{name: "FT", suite: "NPB", loops: 37, seed: 108, mix: []weighted{
		{"butterfly", 3}, {"doall2d", 2}, {"gather", 2}, {"doall1d", 2}, {"norm2d", 1},
		{"recurrence", 1}, {"reverse-copy", 1}, {"waw-scatter", 1},
	}},

	{name: "2mm", suite: "PolyBench", loops: 17, seed: 201, mix: []weighted{
		{"matvec", 4}, {"doall2d", 3}, {"norm2d", 1},
	}},
	{name: "jacobi-2d", suite: "PolyBench", loops: 10, seed: 202, mix: []weighted{
		{"stencil2d", 4}, {"doall2d", 2}, {"stencil-inplace", 1}, {"war-shift", 1},
	}},
	{name: "syr2k", suite: "PolyBench", loops: 11, seed: 203, mix: []weighted{
		{"triangular", 3}, {"norm2d", 2}, {"doall2d", 2}, {"doall1d", 1},
	}},
	{name: "trmm", suite: "PolyBench", loops: 9, seed: 204, mix: []weighted{
		{"triangular", 3}, {"matvec", 2}, {"doall1d", 1},
	}},
}

// maxLoopsPerFunc bounds the loops emitted into one generated kernel
// function, keeping functions (and their PEGs) a realistic size.
const maxLoopsPerFunc = 8

// generate assembles one application from its profile.
func generate(p profile) App {
	b := newBuilder(p.seed)
	var calls []string
	remaining := p.loops
	fnLoops := 0
	fnName := ""

	openFn := func() {
		fnName = b.fresh("kernel")
		b.body.Reset()
		fnLoops = 0
	}
	closeFn := func() {
		fmt.Fprintf(&b.funcs, "void %s() {\n%s}\n\n", fnName, b.body.String())
		calls = append(calls, fnName)
	}

	openFn()
	for remaining > 0 {
		tpl := pickTemplate(b, p.mix, remaining)
		tpl.Emit(b)
		b.loops += tpl.Loops
		remaining -= tpl.Loops
		fnLoops += tpl.Loops
		if fnLoops >= maxLoopsPerFunc && remaining > 0 {
			closeFn()
			openFn()
		}
	}
	closeFn()

	var src strings.Builder
	src.WriteString(b.decls.String())
	src.WriteString("\n")
	src.WriteString(b.funcs.String())
	src.WriteString("void main() {\n")
	for _, c := range calls {
		fmt.Fprintf(&src, "    %s();\n", c)
	}
	src.WriteString("}\n")
	return App{Name: p.name, Suite: p.suite, TargetLoops: p.loops, Source: src.String()}
}

// pickTemplate draws a weighted template whose loop count fits the
// remaining budget; small budgets fall back to single-loop templates.
func pickTemplate(b *builder, mix []weighted, remaining int) Template {
	var candidates []weighted
	for _, w := range mix {
		if templateByName(w.tpl).Loops <= remaining {
			candidates = append(candidates, w)
		}
	}
	if len(candidates) == 0 {
		// remaining == 1 and the mix has only multi-loop templates.
		return templateByName("doall1d")
	}
	total := 0
	for _, c := range candidates {
		total += c.weight
	}
	pick := b.rng.Intn(total)
	for _, c := range candidates {
		pick -= c.weight
		if pick < 0 {
			return templateByName(c.tpl)
		}
	}
	return templateByName(candidates[len(candidates)-1].tpl)
}

// fibSource is the BOTS fib application: 2 for-loops around a recursive
// task kernel (Table II counts 2 loops).
const fibSource = `
float results[8];
float total;

int fib(int k) {
    if (k < 2) { return k; }
    return fib(k - 1) + fib(k - 2);
}

void main() {
    for (int i = 0; i < 8; i++) {
        results[i] = fib(i + 4);
    }
    for (int i = 0; i < 8; i++) {
        total += results[i];
    }
}
`

// nqueensSource is the BOTS nqueens application: 4 for-loops (board
// setup, the row-placement loop inside the recursive solver, the
// top-level placement loop, and the solution accumulation).
const nqueensSource = `
int board[8];
float counts[8];
float solutions;
int n = 6;

int safe(int row, int col) {
    int ok = 1;
    for (int r = 0; r < row; r++) {
        int c = board[r];
        int diff = col - c;
        if (diff < 0) { diff = -diff; }
        if (c == col || diff == row - r) { ok = 0; }
    }
    return ok;
}

int solve(int row) {
    if (row == n) { return 1; }
    int found = 0;
    for (int col = 0; col < 8; col++) {
        if (col < n) {
            if (safe(row, col) == 1) {
                board[row] = col;
                found += solve(row + 1);
            }
        }
    }
    return found;
}

void main() {
    for (int i = 0; i < 8; i++) {
        board[i] = 0;
    }
    solutions = solve(0);
    for (int i = 0; i < 8; i++) {
        counts[i] = solutions + i;
    }
}
`

// Corpus returns the 14 applications of Table II with their exact
// for-loop counts. The result is deterministic.
func Corpus() []App {
	var apps []App
	for _, p := range profiles {
		apps = append(apps, generate(p))
	}
	apps = append(apps,
		App{Name: "fib", Suite: "BOTS", TargetLoops: 2, Source: fibSource},
		App{Name: "nqueens", Suite: "BOTS", TargetLoops: 4, Source: nqueensSource},
	)
	return apps
}

// TransformedCorpus returns extra program variants for dataset
// augmentation: each profile regenerated with perturbed seeds, which
// redraws template choices, operation types and loop order — the paper's
// "modifying the operation type and loop order" transformations.
func TransformedCorpus(copies int) []App {
	var apps []App
	for c := 1; c <= copies; c++ {
		for _, p := range profiles {
			q := p
			q.seed = p.seed + int64(1000*c)
			q.name = fmt.Sprintf("%s-t%d", p.name, c)
			app := generate(q)
			app.Suite = "Generated"
			apps = append(apps, app)
		}
	}
	return apps
}

// RandomProgram generates a random but well-formed MiniC program from the
// template library: between 4 and 12 loops drawn uniformly from every
// template. It is the fuzz-input generator for property tests across the
// whole pipeline (parse, check, lower, execute, analyze).
func RandomProgram(seed int64) App {
	b := newBuilder(seed)
	var mix []weighted
	for _, tpl := range templates {
		mix = append(mix, weighted{tpl: tpl.Name, weight: 1})
	}
	loops := 4 + b.rng.Intn(9)
	p := profile{
		name:  fmt.Sprintf("rand-%d", seed),
		suite: "Random",
		loops: loops,
		seed:  seed,
		mix:   mix,
	}
	return generate(p)
}
