package bench_test

import (
	"testing"

	"mvpar/internal/bench"
	"mvpar/internal/deps"
	"mvpar/internal/interp"
	"mvpar/internal/ir"
	"mvpar/internal/minic"
)

// wantLoops is Table II of the paper.
var wantLoops = map[string]int{
	"BT": 184, "SP": 252, "LU": 173, "IS": 25, "EP": 10, "CG": 32, "MG": 74, "FT": 37,
	"2mm": 17, "jacobi-2d": 10, "syr2k": 11, "trmm": 9,
	"fib": 2, "nqueens": 4,
}

func TestCorpusMatchesTable2(t *testing.T) {
	apps := bench.Corpus()
	if len(apps) != 14 {
		t.Fatalf("apps = %d, want 14", len(apps))
	}
	total := 0
	for _, app := range apps {
		prog, err := minic.Parse(app.Name, app.Source)
		if err != nil {
			t.Fatalf("%s: parse: %v", app.Name, err)
		}
		if err := minic.Check(prog); err != nil {
			t.Fatalf("%s: check: %v", app.Name, err)
		}
		loops := len(prog.Loops())
		if loops != wantLoops[app.Name] {
			t.Errorf("%s: %d loops, want %d", app.Name, loops, wantLoops[app.Name])
		}
		if loops != app.TargetLoops {
			t.Errorf("%s: TargetLoops field %d != actual %d", app.Name, app.TargetLoops, loops)
		}
		total += loops
	}
	if total != 840 {
		t.Fatalf("total loops = %d, want 840 (Table II)", total)
	}
}

func TestCorpusProgramsExecuteAndProfile(t *testing.T) {
	for _, app := range bench.Corpus() {
		prog := ir.MustLower(minic.MustParse(app.Name, app.Source))
		res, stats, err := deps.Analyze(prog, "main", interp.Limits{MaxSteps: 20_000_000})
		if err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		if stats.Steps == 0 {
			t.Fatalf("%s: no execution", app.Name)
		}
		executed := 0
		for _, id := range prog.LoopIDs() {
			if res.Iterations[id] > 0 {
				executed++
			}
		}
		if frac := float64(executed) / float64(len(prog.LoopIDs())); frac < 0.95 {
			t.Fatalf("%s: only %.0f%% of loops executed", app.Name, 100*frac)
		}
	}
}

func TestCorpusHasBothClasses(t *testing.T) {
	for _, app := range bench.Corpus() {
		if app.TargetLoops <= 25 {
			// Tiny apps can legitimately be single-class: all of 2mm's
			// loops are parallelizable (k-loops are reductions), matching
			// the real kernel.
			continue
		}
		prog := ir.MustLower(minic.MustParse(app.Name, app.Source))
		res, _, err := deps.Analyze(prog, "main", interp.Limits{MaxSteps: 20_000_000})
		if err != nil {
			t.Fatal(err)
		}
		par, seq := 0, 0
		for _, id := range prog.LoopIDs() {
			if res.Verdicts[id].Parallelizable {
				par++
			} else {
				seq++
			}
		}
		if par == 0 || seq == 0 {
			t.Fatalf("%s: degenerate class balance par=%d seq=%d", app.Name, par, seq)
		}
		// NPB-style codes are predominantly parallelizable (Table IV).
		if app.Suite == "NPB" && float64(par)/float64(par+seq) < 0.5 {
			t.Fatalf("%s: parallel fraction %.2f suspiciously low", app.Name, float64(par)/float64(par+seq))
		}
	}
}

func TestCorpusDeterministic(t *testing.T) {
	a := bench.Corpus()
	b := bench.Corpus()
	for i := range a {
		if a[i].Source != b[i].Source {
			t.Fatalf("%s: nondeterministic generation", a[i].Name)
		}
	}
}

func TestTransformedCorpus(t *testing.T) {
	orig := bench.Corpus()
	trans := bench.TransformedCorpus(2)
	if len(trans) != 24 { // 12 generated profiles x 2 copies
		t.Fatalf("transformed apps = %d, want 24", len(trans))
	}
	bySuite := map[string]bool{}
	for _, app := range trans {
		bySuite[app.Suite] = true
		prog, err := minic.Parse(app.Name, app.Source)
		if err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		if err := minic.Check(prog); err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
	}
	if !bySuite["Generated"] || len(bySuite) != 1 {
		t.Fatalf("suites = %v", bySuite)
	}
	// Variants must differ from the originals.
	same := 0
	for i, app := range trans[:12] {
		if app.Source == orig[i].Source {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("%d/12 transformed programs identical to originals", same)
	}
}

// Property: every random program is well formed end to end — it parses,
// type-checks, lowers, executes within budget, and yields a verdict for
// every loop, deterministically.
func TestRandomProgramPipelineProperty(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		app := bench.RandomProgram(seed)
		prog, err := minic.Parse(app.Name, app.Source)
		if err != nil {
			t.Fatalf("seed %d: parse: %v\n%s", seed, err, app.Source)
		}
		if err := minic.Check(prog); err != nil {
			t.Fatalf("seed %d: check: %v", seed, err)
		}
		low, err := ir.Lower(prog)
		if err != nil {
			t.Fatalf("seed %d: lower: %v", seed, err)
		}
		res, _, err := deps.Analyze(low, "main", interp.Limits{MaxSteps: 5_000_000})
		if err != nil {
			t.Fatalf("seed %d: analyze: %v", seed, err)
		}
		if len(res.Verdicts) != len(prog.Loops()) {
			t.Fatalf("seed %d: %d verdicts for %d loops", seed, len(res.Verdicts), len(prog.Loops()))
		}
		// Determinism: a second run must agree on every verdict.
		res2, _, err := deps.Analyze(low, "main", interp.Limits{MaxSteps: 5_000_000})
		if err != nil {
			t.Fatal(err)
		}
		for id, v := range res.Verdicts {
			if v.Parallelizable != res2.Verdicts[id].Parallelizable {
				t.Fatalf("seed %d loop %d: verdict nondeterministic", seed, id)
			}
		}
	}
}

// Property: random programs survive the printer round trip with verdicts
// intact.
func TestRandomProgramPrintRoundTripProperty(t *testing.T) {
	for seed := int64(30); seed <= 40; seed++ {
		app := bench.RandomProgram(seed)
		ast := minic.MustParse(app.Name, app.Source)
		printed := minic.Print(ast)
		ast2, err := minic.Parse(app.Name, printed)
		if err != nil {
			t.Fatalf("seed %d: reprint does not parse: %v", seed, err)
		}
		r1, _, err := deps.Analyze(ir.MustLower(ast), "main", interp.Limits{MaxSteps: 5_000_000})
		if err != nil {
			t.Fatal(err)
		}
		r2, _, err := deps.Analyze(ir.MustLower(ast2), "main", interp.Limits{MaxSteps: 5_000_000})
		if err != nil {
			t.Fatal(err)
		}
		ids1 := ir.MustLower(ast).LoopIDs()
		for _, id := range ids1 {
			if r1.Verdicts[id].Parallelizable != r2.Verdicts[id].Parallelizable {
				t.Fatalf("seed %d loop %d: verdict changed across round trip", seed, id)
			}
		}
	}
}
