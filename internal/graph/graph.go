// Package graph provides a small directed-multigraph library used by the
// rest of the system: the program execution graph (PEG), computational-unit
// graphs, and the random-walk engine behind anonymous-walk embeddings are
// all built on it.
//
// Nodes are dense integer IDs handed out by AddNode; edges carry an integer
// Kind so a single graph can mix dependence types (RAW/WAR/WAW) with
// hierarchy edges. The representation favours fast out-neighbour iteration,
// which dominates both message passing and random-walk sampling.
package graph

import (
	"fmt"
	"sort"
	"strings"
)

// Edge is a directed edge From -> To with an application-defined Kind.
type Edge struct {
	From int
	To   int
	Kind int
}

// Directed is a directed multigraph over dense node IDs 0..N-1.
// The zero value is an empty graph ready to use.
type Directed struct {
	out   [][]Edge
	in    [][]Edge
	edges int
}

// New returns an empty directed graph with n pre-allocated nodes.
func New(n int) *Directed {
	g := &Directed{}
	for i := 0; i < n; i++ {
		g.AddNode()
	}
	return g
}

// AddNode adds a node and returns its ID.
func (g *Directed) AddNode() int {
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	return len(g.out) - 1
}

// NumNodes returns the number of nodes.
func (g *Directed) NumNodes() int { return len(g.out) }

// NumEdges returns the number of edges.
func (g *Directed) NumEdges() int { return g.edges }

// AddEdge adds a directed edge from -> to with the given kind.
// It panics if either endpoint is out of range: edges into nonexistent
// nodes indicate a construction bug upstream, never a recoverable state.
func (g *Directed) AddEdge(from, to, kind int) {
	if from < 0 || from >= len(g.out) || to < 0 || to >= len(g.out) {
		panic(fmt.Sprintf("graph: AddEdge(%d, %d) on graph with %d nodes", from, to, len(g.out)))
	}
	e := Edge{From: from, To: to, Kind: kind}
	g.out[from] = append(g.out[from], e)
	g.in[to] = append(g.in[to], e)
	g.edges++
}

// HasEdge reports whether at least one from -> to edge of any kind exists.
func (g *Directed) HasEdge(from, to int) bool {
	for _, e := range g.out[from] {
		if e.To == to {
			return true
		}
	}
	return false
}

// HasEdgeKind reports whether a from -> to edge with the given kind exists.
func (g *Directed) HasEdgeKind(from, to, kind int) bool {
	for _, e := range g.out[from] {
		if e.To == to && e.Kind == kind {
			return true
		}
	}
	return false
}

// Out returns the out-edges of node v. The returned slice is owned by the
// graph and must not be modified.
func (g *Directed) Out(v int) []Edge { return g.out[v] }

// In returns the in-edges of node v. The returned slice is owned by the
// graph and must not be modified.
func (g *Directed) In(v int) []Edge { return g.in[v] }

// OutDegree returns the number of out-edges of v.
func (g *Directed) OutDegree(v int) int { return len(g.out[v]) }

// InDegree returns the number of in-edges of v.
func (g *Directed) InDegree(v int) int { return len(g.in[v]) }

// Successors returns the distinct successor node IDs of v in ascending order.
func (g *Directed) Successors(v int) []int {
	return distinctEndpoints(g.out[v], func(e Edge) int { return e.To })
}

// Predecessors returns the distinct predecessor node IDs of v in ascending order.
func (g *Directed) Predecessors(v int) []int {
	return distinctEndpoints(g.in[v], func(e Edge) int { return e.From })
}

// Neighbors returns the distinct nodes adjacent to v in either direction,
// in ascending order. Walk sampling treats the graph as undirected so that
// structural patterns are visible regardless of dependence direction.
func (g *Directed) Neighbors(v int) []int {
	seen := map[int]bool{}
	for _, e := range g.out[v] {
		seen[e.To] = true
	}
	for _, e := range g.in[v] {
		seen[e.From] = true
	}
	res := make([]int, 0, len(seen))
	for n := range seen {
		res = append(res, n)
	}
	sort.Ints(res)
	return res
}

func distinctEndpoints(edges []Edge, pick func(Edge) int) []int {
	seen := map[int]bool{}
	for _, e := range edges {
		seen[pick(e)] = true
	}
	res := make([]int, 0, len(seen))
	for n := range seen {
		res = append(res, n)
	}
	sort.Ints(res)
	return res
}

// Edges returns a copy of all edges in insertion order per source node.
func (g *Directed) Edges() []Edge {
	res := make([]Edge, 0, g.edges)
	for _, es := range g.out {
		res = append(res, es...)
	}
	return res
}

// Subgraph returns the induced subgraph over the given nodes together with
// the mapping from new IDs to original IDs. Edges with either endpoint
// outside the node set are dropped.
func (g *Directed) Subgraph(nodes []int) (*Directed, []int) {
	oldToNew := make(map[int]int, len(nodes))
	newToOld := make([]int, 0, len(nodes))
	for _, v := range nodes {
		if _, dup := oldToNew[v]; dup {
			continue
		}
		oldToNew[v] = len(newToOld)
		newToOld = append(newToOld, v)
	}
	sub := New(len(newToOld))
	for _, v := range newToOld {
		for _, e := range g.out[v] {
			if to, ok := oldToNew[e.To]; ok {
				sub.AddEdge(oldToNew[v], to, e.Kind)
			}
		}
	}
	return sub, newToOld
}

// BFS runs a breadth-first traversal from start following out-edges and
// returns the visited nodes in visit order.
func (g *Directed) BFS(start int) []int {
	visited := make([]bool, g.NumNodes())
	queue := []int{start}
	visited[start] = true
	var order []int
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, e := range g.out[v] {
			if !visited[e.To] {
				visited[e.To] = true
				queue = append(queue, e.To)
			}
		}
	}
	return order
}

// TopoSort returns a topological order of the graph, or ok=false if the
// graph contains a cycle (dependence graphs of loops routinely do).
func (g *Directed) TopoSort() (order []int, ok bool) {
	n := g.NumNodes()
	indeg := make([]int, n)
	for v := 0; v < n; v++ {
		for _, e := range g.out[v] {
			indeg[e.To]++
		}
	}
	var queue []int
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, e := range g.out[v] {
			indeg[e.To]--
			if indeg[e.To] == 0 {
				queue = append(queue, e.To)
			}
		}
	}
	return order, len(order) == n
}

// LongestPath returns the number of edges on the longest simple path in a
// DAG, or ok=false if the graph has a cycle. It is used for critical-path
// length when the dependence subgraph is acyclic.
func (g *Directed) LongestPath() (length int, ok bool) {
	order, ok := g.TopoSort()
	if !ok {
		return 0, false
	}
	dist := make([]int, g.NumNodes())
	best := 0
	for _, v := range order {
		for _, e := range g.out[v] {
			if dist[v]+1 > dist[e.To] {
				dist[e.To] = dist[v] + 1
			}
			if dist[e.To] > best {
				best = dist[e.To]
			}
		}
	}
	return best, true
}

// SCC computes strongly connected components with Tarjan's algorithm and
// returns, for each node, its component index; components are numbered in
// reverse topological order of the condensation.
func (g *Directed) SCC() (comp []int, ncomp int) {
	n := g.NumNodes()
	comp = make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	counter := 0

	// Iterative Tarjan: frames carry (node, next out-edge position).
	type frame struct{ v, ei int }
	for root := 0; root < n; root++ {
		if index[root] != -1 {
			continue
		}
		frames := []frame{{root, 0}}
		index[root] = counter
		low[root] = counter
		counter++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.ei < len(g.out[f.v]) {
				w := g.out[f.v][f.ei].To
				f.ei++
				if index[w] == -1 {
					index[w] = counter
					low[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{w, 0})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := frames[len(frames)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = ncomp
					if w == v {
						break
					}
				}
				ncomp++
			}
		}
	}
	return comp, ncomp
}

// DOT renders the graph in Graphviz dot format. label(v) and edgeLabel(e)
// may be nil, in which case node IDs and edge kinds are used.
func (g *Directed) DOT(name string, label func(int) string, edgeLabel func(Edge) string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	for v := 0; v < g.NumNodes(); v++ {
		l := fmt.Sprintf("%d", v)
		if label != nil {
			l = label(v)
		}
		fmt.Fprintf(&b, "  n%d [label=%q];\n", v, l)
	}
	for _, e := range g.Edges() {
		l := fmt.Sprintf("%d", e.Kind)
		if edgeLabel != nil {
			l = edgeLabel(e)
		}
		fmt.Fprintf(&b, "  n%d -> n%d [label=%q];\n", e.From, e.To, l)
	}
	b.WriteString("}\n")
	return b.String()
}
