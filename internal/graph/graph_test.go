package graph

import (
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func line(n int) *Directed {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1, 0)
	}
	return g
}

func TestAddNodeAndEdgeCounts(t *testing.T) {
	g := New(0)
	if g.NumNodes() != 0 || g.NumEdges() != 0 {
		t.Fatalf("empty graph has %d nodes, %d edges", g.NumNodes(), g.NumEdges())
	}
	a := g.AddNode()
	b := g.AddNode()
	if a != 0 || b != 1 {
		t.Fatalf("node IDs = %d, %d; want 0, 1", a, b)
	}
	g.AddEdge(a, b, 7)
	g.AddEdge(a, b, 8) // multigraph: parallel edges allowed
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", g.NumEdges())
	}
	if !g.HasEdge(a, b) || g.HasEdge(b, a) {
		t.Fatal("HasEdge direction wrong")
	}
	if !g.HasEdgeKind(a, b, 7) || !g.HasEdgeKind(a, b, 8) || g.HasEdgeKind(a, b, 9) {
		t.Fatal("HasEdgeKind wrong")
	}
}

func TestAddEdgeOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range edge")
		}
	}()
	New(1).AddEdge(0, 5, 0)
}

func TestDegreesAndAdjacency(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 0)
	g.AddEdge(0, 2, 1)
	g.AddEdge(2, 1, 0)
	g.AddEdge(0, 1, 2)
	if g.OutDegree(0) != 3 || g.InDegree(1) != 3 {
		t.Fatalf("degrees: out(0)=%d in(1)=%d", g.OutDegree(0), g.InDegree(1))
	}
	if got := g.Successors(0); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Fatalf("Successors(0) = %v", got)
	}
	if got := g.Predecessors(1); !reflect.DeepEqual(got, []int{0, 2}) {
		t.Fatalf("Predecessors(1) = %v", got)
	}
	if got := g.Neighbors(2); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Fatalf("Neighbors(2) = %v", got)
	}
	if got := g.Neighbors(3); len(got) != 0 {
		t.Fatalf("Neighbors(3) = %v, want empty", got)
	}
}

func TestTopoSortDAG(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1, 0)
	g.AddEdge(0, 2, 0)
	g.AddEdge(1, 3, 0)
	g.AddEdge(2, 3, 0)
	g.AddEdge(3, 4, 0)
	order, ok := g.TopoSort()
	if !ok {
		t.Fatal("TopoSort reported cycle on a DAG")
	}
	pos := make(map[int]int)
	for i, v := range order {
		pos[v] = i
	}
	for _, e := range g.Edges() {
		if pos[e.From] >= pos[e.To] {
			t.Fatalf("edge %d->%d violates topo order %v", e.From, e.To, order)
		}
	}
}

func TestTopoSortCycle(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 0)
	g.AddEdge(1, 2, 0)
	g.AddEdge(2, 0, 0)
	if _, ok := g.TopoSort(); ok {
		t.Fatal("TopoSort did not detect cycle")
	}
}

func TestLongestPath(t *testing.T) {
	g := line(6)
	g.AddEdge(0, 5, 0) // shortcut should not shorten the longest path
	l, ok := g.LongestPath()
	if !ok || l != 5 {
		t.Fatalf("LongestPath = %d, %v; want 5, true", l, ok)
	}
	c := New(2)
	c.AddEdge(0, 1, 0)
	c.AddEdge(1, 0, 0)
	if _, ok := c.LongestPath(); ok {
		t.Fatal("LongestPath should fail on cyclic graph")
	}
}

func TestBFSOrder(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1, 0)
	g.AddEdge(0, 2, 0)
	g.AddEdge(1, 3, 0)
	g.AddEdge(2, 4, 0)
	order := g.BFS(0)
	if len(order) != 5 || order[0] != 0 {
		t.Fatalf("BFS order = %v", order)
	}
	depth := map[int]int{0: 0, 1: 1, 2: 1, 3: 2, 4: 2}
	for i := 1; i < len(order); i++ {
		if depth[order[i]] < depth[order[i-1]] {
			t.Fatalf("BFS order not level-wise: %v", order)
		}
	}
}

func TestSCC(t *testing.T) {
	g := New(6)
	// Component {0,1,2}, component {3,4}, singleton {5}.
	g.AddEdge(0, 1, 0)
	g.AddEdge(1, 2, 0)
	g.AddEdge(2, 0, 0)
	g.AddEdge(2, 3, 0)
	g.AddEdge(3, 4, 0)
	g.AddEdge(4, 3, 0)
	g.AddEdge(4, 5, 0)
	comp, n := g.SCC()
	if n != 3 {
		t.Fatalf("SCC count = %d, want 3", n)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Fatalf("nodes 0,1,2 in different components: %v", comp)
	}
	if comp[3] != comp[4] {
		t.Fatalf("nodes 3,4 in different components: %v", comp)
	}
	if comp[5] == comp[0] || comp[5] == comp[3] {
		t.Fatalf("node 5 merged into a cycle component: %v", comp)
	}
}

func TestSubgraph(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 2)
	g.AddEdge(2, 3, 3)
	g.AddEdge(3, 4, 4)
	sub, newToOld := g.Subgraph([]int{1, 2, 3, 1}) // duplicate input tolerated
	if sub.NumNodes() != 3 {
		t.Fatalf("subgraph nodes = %d, want 3", sub.NumNodes())
	}
	if !reflect.DeepEqual(newToOld, []int{1, 2, 3}) {
		t.Fatalf("newToOld = %v", newToOld)
	}
	if sub.NumEdges() != 2 {
		t.Fatalf("subgraph edges = %d, want 2 (1->2, 2->3)", sub.NumEdges())
	}
	if !sub.HasEdgeKind(0, 1, 2) || !sub.HasEdgeKind(1, 2, 3) {
		t.Fatal("subgraph edges remapped incorrectly")
	}
}

func TestRandomWalkLengthAndConnectivity(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 0)
	g.AddEdge(1, 2, 0)
	g.AddEdge(2, 3, 0)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		w := g.RandomWalk(0, 7, rng)
		if len(w) != 8 {
			t.Fatalf("walk length = %d, want 8", len(w))
		}
		if w[0] != 0 {
			t.Fatalf("walk does not start at start node: %v", w)
		}
		for j := 1; j < len(w); j++ {
			nbrs := g.Neighbors(w[j-1])
			found := false
			for _, n := range nbrs {
				if n == w[j] {
					found = true
				}
			}
			if !found {
				t.Fatalf("walk step %d->%d not an edge: %v", w[j-1], w[j], w)
			}
		}
	}
}

func TestRandomWalkIsolatedNode(t *testing.T) {
	g := New(1)
	rng := rand.New(rand.NewSource(2))
	w := g.RandomWalk(0, 5, rng)
	if len(w) != 6 {
		t.Fatalf("walk length = %d, want 6", len(w))
	}
	for _, v := range w {
		if v != 0 {
			t.Fatalf("isolated walk left node: %v", w)
		}
	}
}

func TestRandomWalksCount(t *testing.T) {
	g := line(3)
	rng := rand.New(rand.NewSource(3))
	ws := g.RandomWalks(1, 4, 9, rng)
	if len(ws) != 9 {
		t.Fatalf("got %d walks, want 9", len(ws))
	}
}

func TestDOTOutput(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1, 3)
	dot := g.DOT("g", func(v int) string { return "node" }, nil)
	for _, want := range []string{"digraph", "n0 -> n1", `label="3"`, `label="node"`} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, dot)
		}
	}
}

// Property: TopoSort succeeds on every random DAG (edges only i->j, i<j)
// and the order respects every edge.
func TestTopoSortPropertyRandomDAGs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		g := New(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Intn(3) == 0 {
					g.AddEdge(i, j, 0)
				}
			}
		}
		order, ok := g.TopoSort()
		if !ok || len(order) != n {
			return false
		}
		pos := make([]int, n)
		for i, v := range order {
			pos[v] = i
		}
		for _, e := range g.Edges() {
			if pos[e.From] >= pos[e.To] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the SCC partition covers every node exactly once and two nodes
// mutually reachable via a direct 2-cycle share a component.
func TestSCCPropertyTwoCycles(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(15)
		g := New(n)
		type pair struct{ a, b int }
		var cycles []pair
		for k := 0; k < n; k++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a == b {
				continue
			}
			g.AddEdge(a, b, 0)
			g.AddEdge(b, a, 0)
			cycles = append(cycles, pair{a, b})
		}
		comp, ncomp := g.SCC()
		if ncomp <= 0 || ncomp > n {
			return false
		}
		for _, v := range comp {
			if v < 0 || v >= ncomp {
				return false
			}
		}
		for _, c := range cycles {
			if comp[c.a] != comp[c.b] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Subgraph preserves exactly the induced edges.
func TestSubgraphPropertyInduced(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(12)
		g := New(n)
		for k := 0; k < 2*n; k++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n), rng.Intn(3))
		}
		var keep []int
		for v := 0; v < n; v++ {
			if rng.Intn(2) == 0 {
				keep = append(keep, v)
			}
		}
		sub, newToOld := g.Subgraph(keep)
		inSet := map[int]bool{}
		for _, v := range newToOld {
			inSet[v] = true
		}
		want := 0
		for _, e := range g.Edges() {
			if inSet[e.From] && inSet[e.To] {
				want++
			}
		}
		return sub.NumEdges() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func sortedCopy(s []int) []int {
	c := append([]int(nil), s...)
	sort.Ints(c)
	return c
}

func TestEdgesReturnsAll(t *testing.T) {
	g := New(3)
	g.AddEdge(2, 0, 1)
	g.AddEdge(0, 1, 2)
	es := g.Edges()
	if len(es) != 2 {
		t.Fatalf("Edges() = %v", es)
	}
	var froms []int
	for _, e := range es {
		froms = append(froms, e.From)
	}
	if !reflect.DeepEqual(sortedCopy(froms), []int{0, 2}) {
		t.Fatalf("edge sources = %v", froms)
	}
}
