package graph

import "math/rand"

// RandomWalk samples a walk of exactly length steps (length+1 nodes)
// starting at start, moving to a uniformly random neighbour at each step.
// The graph is treated as undirected so that structural patterns are seen
// irrespective of dependence direction, matching the anonymous-walk
// literature. If a node has no neighbours the walk stays in place, so the
// returned slice always has length+1 entries.
func (g *Directed) RandomWalk(start, length int, rng *rand.Rand) []int {
	walk := make([]int, 0, length+1)
	walk = append(walk, start)
	cur := start
	for i := 0; i < length; i++ {
		nbrs := g.Neighbors(cur)
		if len(nbrs) == 0 {
			walk = append(walk, cur)
			continue
		}
		cur = nbrs[rng.Intn(len(nbrs))]
		walk = append(walk, cur)
	}
	return walk
}

// RandomWalks samples count walks of the given length from start.
func (g *Directed) RandomWalks(start, length, count int, rng *rand.Rand) [][]int {
	walks := make([][]int, count)
	for i := range walks {
		walks[i] = g.RandomWalk(start, length, rng)
	}
	return walks
}
