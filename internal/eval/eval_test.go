package eval_test

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"mvpar/internal/eval"
)

func TestConfusionMetrics(t *testing.T) {
	var c eval.Confusion
	// 3 TP, 1 FP, 4 TN, 2 FN.
	for i := 0; i < 3; i++ {
		c.Add(1, 1)
	}
	c.Add(1, 0)
	for i := 0; i < 4; i++ {
		c.Add(0, 0)
	}
	for i := 0; i < 2; i++ {
		c.Add(0, 1)
	}
	if c.Total() != 10 {
		t.Fatalf("total = %d", c.Total())
	}
	if math.Abs(c.Accuracy()-0.7) > 1e-12 {
		t.Fatalf("accuracy = %v", c.Accuracy())
	}
	if math.Abs(c.Precision()-0.75) > 1e-12 {
		t.Fatalf("precision = %v", c.Precision())
	}
	if math.Abs(c.Recall()-0.6) > 1e-12 {
		t.Fatalf("recall = %v", c.Recall())
	}
	wantF1 := 2 * 0.75 * 0.6 / (0.75 + 0.6)
	if math.Abs(c.F1()-wantF1) > 1e-12 {
		t.Fatalf("f1 = %v", c.F1())
	}
	if !strings.Contains(c.String(), "acc=70.0%") {
		t.Fatalf("String() = %q", c.String())
	}
}

func TestConfusionEmpty(t *testing.T) {
	var c eval.Confusion
	if c.Accuracy() != 0 || c.Precision() != 0 || c.Recall() != 0 || c.F1() != 0 {
		t.Fatal("empty confusion must report zeros")
	}
}

// Property: accuracy is always within [0,1] and equals 1 only when there
// are no errors.
func TestConfusionAccuracyProperty(t *testing.T) {
	f := func(tp, fp, tn, fn uint8) bool {
		c := eval.Confusion{TP: int(tp), FP: int(fp), TN: int(tn), FN: int(fn)}
		if c.Total() == 0 {
			return c.Accuracy() == 0
		}
		a := c.Accuracy()
		if a < 0 || a > 1 {
			return false
		}
		if a == 1 && (fp != 0 || fn != 0) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTableRendering(t *testing.T) {
	tb := eval.Table{Title: "T", Headers: []string{"Model", "Acc(%)"}}
	tb.AddRow("MV-GNN", "92.6")
	tb.AddRow("NCC", "87.3")
	out := tb.String()
	for _, want := range []string{"T\n", "Model", "Acc(%)", "MV-GNN", "92.6", "---"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
}

func TestPct(t *testing.T) {
	if eval.Pct(0.926) != "92.6" {
		t.Fatalf("Pct = %q", eval.Pct(0.926))
	}
}

func TestBars(t *testing.T) {
	out := eval.Bars("fig 8", []string{"IMP_n", "IMP_s"}, []float64{1, 0.5}, 10)
	if !strings.Contains(out, "IMP_n | ##########") {
		t.Fatalf("bars:\n%s", out)
	}
	if !strings.Contains(out, "IMP_s | #####") {
		t.Fatalf("bars:\n%s", out)
	}
}

func TestBarsZeroValues(t *testing.T) {
	out := eval.Bars("z", []string{"x"}, []float64{0}, 10)
	if !strings.Contains(out, "x | ") {
		t.Fatalf("bars:\n%s", out)
	}
}

func TestCurve(t *testing.T) {
	out := eval.Curve("loss", []float64{1.0, 0.5, 0.25, 0.1})
	if !strings.Contains(out, "first=1.0000") || !strings.Contains(out, "last=0.1000") {
		t.Fatalf("curve:\n%s", out)
	}
	if eval.Curve("e", nil) != "e: (empty)\n" {
		t.Fatal("empty curve rendering wrong")
	}
	// Constant series must not divide by zero.
	if out := eval.Curve("c", []float64{2, 2, 2}); !strings.Contains(out, "▁▁▁") {
		t.Fatalf("constant curve:\n%s", out)
	}
}

func TestAUCPerfectAndRandom(t *testing.T) {
	perfect := []eval.ScoredPrediction{
		{Score: 0.9, Truth: 1}, {Score: 0.8, Truth: 1},
		{Score: 0.2, Truth: 0}, {Score: 0.1, Truth: 0},
	}
	if got := eval.AUC(perfect); got != 1 {
		t.Fatalf("perfect AUC = %v", got)
	}
	inverted := []eval.ScoredPrediction{
		{Score: 0.1, Truth: 1}, {Score: 0.9, Truth: 0},
	}
	if got := eval.AUC(inverted); got != 0 {
		t.Fatalf("inverted AUC = %v", got)
	}
	ties := []eval.ScoredPrediction{
		{Score: 0.5, Truth: 1}, {Score: 0.5, Truth: 0},
	}
	if got := eval.AUC(ties); got != 0.5 {
		t.Fatalf("tied AUC = %v", got)
	}
	if got := eval.AUC([]eval.ScoredPrediction{{Score: 1, Truth: 1}}); got != 0.5 {
		t.Fatalf("single-class AUC = %v", got)
	}
}

func TestROCMonotone(t *testing.T) {
	preds := []eval.ScoredPrediction{
		{0.9, 1}, {0.7, 1}, {0.6, 0}, {0.4, 1}, {0.3, 0}, {0.1, 0},
	}
	pts := eval.ROC(preds, []float64{0, 0.25, 0.5, 0.75, 1.01})
	// Threshold 0: everything predicted positive.
	if pts[0].TPR != 1 || pts[0].FPR != 1 {
		t.Fatalf("threshold 0: %+v", pts[0])
	}
	// Above 1: nothing predicted positive.
	last := pts[len(pts)-1]
	if last.TPR != 0 || last.FPR != 0 {
		t.Fatalf("threshold >1: %+v", last)
	}
	// Rates shrink as the threshold grows.
	for i := 1; i < len(pts); i++ {
		if pts[i].TPR > pts[i-1].TPR+1e-12 || pts[i].FPR > pts[i-1].FPR+1e-12 {
			t.Fatalf("ROC not monotone at %d: %+v -> %+v", i, pts[i-1], pts[i])
		}
	}
}
