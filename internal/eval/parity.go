package eval

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// ParityPair is one loop predicted under both inference tiers: the
// float64 reference and the float32 fast path. Truth is the oracle label
// (1 = parallelizable) so the report can state per-suite accuracies in
// Table-3 terms, not just agreement.
type ParityPair struct {
	Suite   string
	Program string
	LoopID  int
	Truth   int

	RefLabel  int
	RefProba  float64
	FastLabel int
	FastProba float64
}

// Flip reports whether the fast path changed the predicted label.
func (p ParityPair) Flip() bool { return p.RefLabel != p.FastLabel }

// SuiteParity is one benchmark suite's accuracy under both tiers.
type SuiteParity struct {
	Suite string
	N     int
	// RefAcc and FastAcc are the Table-3 style per-suite accuracies of
	// the reference and fast tiers against the oracle labels.
	RefAcc, FastAcc float64
	// AccDrift is |FastAcc - RefAcc|: what the parity gate bounds.
	AccDrift float64
	Flips    int
}

// ParityReport is the accuracy-parity comparison over a corpus: per-suite
// accuracy drift, every label flip loop-by-loop, and the worst
// probability drift observed.
type ParityReport struct {
	// Tier names the fast tier under comparison (e.g. "float32", "int8");
	// the reference is always float64. Empty renders as "float32" so
	// reports built before tiers existed keep their wording.
	Tier   string
	Suites []SuiteParity
	Flips  []ParityPair
	N      int
	// MaxAccDrift is the largest per-suite accuracy drift.
	MaxAccDrift float64
	// MaxProbaDrift is the largest |FastProba - RefProba| over all pairs.
	MaxProbaDrift float64
}

// Parity aggregates prediction pairs into a report. Suites are sorted by
// name; flips keep the caller's pair order.
func Parity(pairs []ParityPair) *ParityReport {
	type acc struct {
		n, refOK, fastOK, flips int
	}
	bySuite := map[string]*acc{}
	r := &ParityReport{N: len(pairs)}
	for _, p := range pairs {
		a := bySuite[p.Suite]
		if a == nil {
			a = &acc{}
			bySuite[p.Suite] = a
		}
		a.n++
		if p.RefLabel == p.Truth {
			a.refOK++
		}
		if p.FastLabel == p.Truth {
			a.fastOK++
		}
		if p.Flip() {
			a.flips++
			r.Flips = append(r.Flips, p)
		}
		if d := math.Abs(p.FastProba - p.RefProba); d > r.MaxProbaDrift {
			r.MaxProbaDrift = d
		}
	}
	names := make([]string, 0, len(bySuite))
	for s := range bySuite {
		names = append(names, s)
	}
	sort.Strings(names)
	for _, s := range names {
		a := bySuite[s]
		sp := SuiteParity{
			Suite:   s,
			N:       a.n,
			RefAcc:  float64(a.refOK) / float64(a.n),
			FastAcc: float64(a.fastOK) / float64(a.n),
			Flips:   a.flips,
		}
		sp.AccDrift = math.Abs(sp.FastAcc - sp.RefAcc)
		if sp.AccDrift > r.MaxAccDrift {
			r.MaxAccDrift = sp.AccDrift
		}
		r.Suites = append(r.Suites, sp)
	}
	return r
}

// Check enforces the parity gate: every suite's accuracy drift must stay
// within accTol (0 demands identical per-suite accuracy) and the total
// label flips must not exceed maxFlips. It returns nil when the fast
// path holds parity, or an error naming the first violated bound.
func (r *ParityReport) Check(accTol float64, maxFlips int) error {
	if len(r.Flips) > maxFlips {
		return fmt.Errorf("eval: parity gate failed: %d label flips exceed the allowed %d (first: %s loop %d)",
			len(r.Flips), maxFlips, r.Flips[0].Program, r.Flips[0].LoopID)
	}
	for _, s := range r.Suites {
		if s.AccDrift > accTol {
			return fmt.Errorf("eval: parity gate failed: suite %s accuracy drift %.4f exceeds tolerance %.4f (ref %.4f, fast %.4f)",
				s.Suite, s.AccDrift, accTol, s.RefAcc, s.FastAcc)
		}
	}
	return nil
}

// tier returns the fast tier's display name.
func (r *ParityReport) tier() string {
	if r.Tier == "" {
		return "float32"
	}
	return r.Tier
}

// Render formats the report: the per-suite accuracy table followed by
// every label flip, loop by loop. The header and accuracy column name the
// fast tier under comparison; the reference column is always float64.
func (r *ParityReport) Render() string {
	tier := r.tier()
	t := &Table{
		Title:   fmt.Sprintf("Accuracy parity over %d loops (%s fast path vs float64 reference)", r.N, tier),
		Headers: []string{"suite", "loops", "acc(f64)", "acc(" + tier + ")", "drift", "flips"},
	}
	for _, s := range r.Suites {
		t.AddRow(s.Suite, fmt.Sprint(s.N), Pct(s.RefAcc), Pct(s.FastAcc),
			fmt.Sprintf("%.4f", s.AccDrift), fmt.Sprint(s.Flips))
	}
	var b strings.Builder
	b.WriteString(t.String())
	fmt.Fprintf(&b, "max proba drift: %.2e\n", r.MaxProbaDrift)
	if len(r.Flips) == 0 {
		b.WriteString("label flips: none\n")
		return b.String()
	}
	fmt.Fprintf(&b, "label flips (%d):\n", len(r.Flips))
	for _, p := range r.Flips {
		fmt.Fprintf(&b, "  %s/%s loop %d: f64=%d (p=%.4f) %s=%d (p=%.4f) truth=%d\n",
			p.Suite, p.Program, p.LoopID, p.RefLabel, p.RefProba, tier, p.FastLabel, p.FastProba, p.Truth)
	}
	return b.String()
}
