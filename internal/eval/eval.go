// Package eval provides classification metrics (accuracy, precision,
// recall, F1, confusion matrices) and the ASCII renderers that regenerate
// the paper's tables and figures.
package eval

import (
	"fmt"
	"strings"
)

// Confusion is a binary confusion matrix; class 1 = parallelizable.
type Confusion struct {
	TP, FP, TN, FN int
}

// Add records one (prediction, truth) pair.
func (c *Confusion) Add(pred, truth int) {
	switch {
	case pred == 1 && truth == 1:
		c.TP++
	case pred == 1 && truth == 0:
		c.FP++
	case pred == 0 && truth == 0:
		c.TN++
	default:
		c.FN++
	}
}

// Total returns the number of recorded pairs.
func (c *Confusion) Total() int { return c.TP + c.FP + c.TN + c.FN }

// Accuracy returns (TP+TN)/total, or 0 for an empty matrix.
func (c *Confusion) Accuracy() float64 {
	if c.Total() == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(c.Total())
}

// Precision returns TP/(TP+FP), or 0.
func (c *Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP/(TP+FN), or 0.
func (c *Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 returns the harmonic mean of precision and recall, or 0.
func (c *Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// String renders the matrix compactly.
func (c *Confusion) String() string {
	return fmt.Sprintf("TP=%d FP=%d TN=%d FN=%d acc=%.1f%% P=%.2f R=%.2f F1=%.2f",
		c.TP, c.FP, c.TN, c.FN, 100*c.Accuracy(), c.Precision(), c.Recall(), c.F1())
}

// Table renders rows of cells as an aligned ASCII table with a header.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title + "\n")
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// Pct formats a [0,1] fraction as a percentage with one decimal.
func Pct(v float64) string { return fmt.Sprintf("%.1f", 100*v) }

// Bars renders labeled horizontal bars (figure-8 style) scaled to width.
func Bars(title string, labels []string, values []float64, width int) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	maxLabel := 0
	maxVal := 0.0
	for i, l := range labels {
		if len(l) > maxLabel {
			maxLabel = len(l)
		}
		if values[i] > maxVal {
			maxVal = values[i]
		}
	}
	if maxVal == 0 {
		maxVal = 1
	}
	for i, l := range labels {
		n := int(values[i] / maxVal * float64(width))
		fmt.Fprintf(&b, "%-*s | %s %.3f\n", maxLabel, l, strings.Repeat("#", n), values[i])
	}
	return b.String()
}

// Curve renders an epoch series (figure-7 style) as a compact sparkline
// plus first/last values.
func Curve(title string, values []float64) string {
	if len(values) == 0 {
		return title + ": (empty)\n"
	}
	marks := []rune("▁▂▃▄▅▆▇█")
	lo, hi := values[0], values[0]
	for _, v := range values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s  first=%.4f last=%.4f\n  ", title, values[0], values[len(values)-1])
	for _, v := range values {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(marks)-1))
		}
		b.WriteRune(marks[idx])
	}
	b.WriteString("\n")
	return b.String()
}

// ScoredPrediction pairs a model's probability for class 1 with the truth.
type ScoredPrediction struct {
	Score float64
	Truth int
}

// AUC computes the area under the ROC curve via the rank statistic
// (probability a random positive scores above a random negative, ties
// counted half). It returns 0.5 for degenerate inputs with a single class.
func AUC(preds []ScoredPrediction) float64 {
	var pos, neg []float64
	for _, p := range preds {
		if p.Truth == 1 {
			pos = append(pos, p.Score)
		} else {
			neg = append(neg, p.Score)
		}
	}
	if len(pos) == 0 || len(neg) == 0 {
		return 0.5
	}
	wins := 0.0
	for _, p := range pos {
		for _, n := range neg {
			switch {
			case p > n:
				wins++
			case p == n:
				wins += 0.5
			}
		}
	}
	return wins / float64(len(pos)*len(neg))
}

// ROCPoint is one operating point of a threshold sweep.
type ROCPoint struct {
	Threshold float64
	TPR       float64
	FPR       float64
}

// ROC sweeps the given thresholds and returns the operating points.
func ROC(preds []ScoredPrediction, thresholds []float64) []ROCPoint {
	out := make([]ROCPoint, 0, len(thresholds))
	for _, th := range thresholds {
		var c Confusion
		for _, p := range preds {
			pred := 0
			if p.Score >= th {
				pred = 1
			}
			c.Add(pred, p.Truth)
		}
		tpr := 0.0
		if c.TP+c.FN > 0 {
			tpr = float64(c.TP) / float64(c.TP+c.FN)
		}
		fpr := 0.0
		if c.FP+c.TN > 0 {
			fpr = float64(c.FP) / float64(c.FP+c.TN)
		}
		out = append(out, ROCPoint{Threshold: th, TPR: tpr, FPR: fpr})
	}
	return out
}
