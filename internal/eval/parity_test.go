package eval

import (
	"math"
	"strings"
	"testing"
)

func parityFixture() []ParityPair {
	return []ParityPair{
		{Suite: "NPB", Program: "is", LoopID: 1, Truth: 1, RefLabel: 1, RefProba: 0.9, FastLabel: 1, FastProba: 0.90002},
		{Suite: "NPB", Program: "is", LoopID: 2, Truth: 0, RefLabel: 0, RefProba: 0.1, FastLabel: 0, FastProba: 0.1},
		{Suite: "Poly", Program: "jacobi", LoopID: 3, Truth: 1, RefLabel: 0, RefProba: 0.4, FastLabel: 0, FastProba: 0.4},
	}
}

func TestParityCleanReport(t *testing.T) {
	r := Parity(parityFixture())
	if r.N != 3 || len(r.Flips) != 0 {
		t.Fatalf("N=%d flips=%d, want 3 and 0", r.N, len(r.Flips))
	}
	if len(r.Suites) != 2 || r.Suites[0].Suite != "NPB" || r.Suites[1].Suite != "Poly" {
		t.Fatalf("suites not sorted/aggregated: %+v", r.Suites)
	}
	// NPB: both tiers 2/2. Poly: both tiers 0/1 (same miss) → drift 0.
	if r.Suites[0].RefAcc != 1 || r.Suites[0].FastAcc != 1 {
		t.Fatalf("NPB accuracies: %+v", r.Suites[0])
	}
	if r.Suites[1].RefAcc != 0 || r.Suites[1].FastAcc != 0 || r.Suites[1].AccDrift != 0 {
		t.Fatalf("Poly accuracies: %+v", r.Suites[1])
	}
	if math.Abs(r.MaxProbaDrift-2e-5) > 1e-12 {
		t.Fatalf("MaxProbaDrift = %v, want 2e-05", r.MaxProbaDrift)
	}
	if err := r.Check(0, 0); err != nil {
		t.Fatalf("clean report fails the zero-tolerance gate: %v", err)
	}
}

func TestParityFlipFailsGate(t *testing.T) {
	pairs := parityFixture()
	pairs[2].FastLabel = 1 // f32 flips the Poly loop (and happens to fix it)
	pairs[2].FastProba = 0.6
	r := Parity(pairs)
	if len(r.Flips) != 1 || r.Flips[0].LoopID != 3 {
		t.Fatalf("flips = %+v, want exactly loop 3", r.Flips)
	}
	// A flip is a parity violation even when it improves accuracy: the
	// gate defends equivalence, not quality.
	err := r.Check(1, 0) // generous accuracy tolerance, zero allowed flips
	if err == nil || !strings.Contains(err.Error(), "label flips") {
		t.Fatalf("flip not rejected: %v", err)
	}
	if err := r.Check(1, 1); err != nil {
		t.Fatalf("flip allowance not honored: %v", err)
	}
	// With flips allowed, the accuracy drift (Poly 0% → 100%) must trip
	// the zero-drift bound.
	err = r.Check(0, 1)
	if err == nil || !strings.Contains(err.Error(), "accuracy drift") {
		t.Fatalf("accuracy drift not rejected: %v", err)
	}
}

func TestParityRender(t *testing.T) {
	pairs := parityFixture()
	pairs[0].FastLabel = 0
	r := Parity(pairs)
	out := r.Render()
	for _, want := range []string{"suite", "NPB", "Poly", "max proba drift", "label flips (1):", "is loop 1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	clean := Parity(parityFixture()).Render()
	if !strings.Contains(clean, "label flips: none") {
		t.Fatalf("clean render missing flip summary:\n%s", clean)
	}
}

// TestParityRenderTier: the report header, accuracy column and flip lines
// name the tier under comparison; an unset tier keeps the float32 wording.
func TestParityRenderTier(t *testing.T) {
	pairs := parityFixture()
	pairs[0].FastLabel = 0
	r := Parity(pairs)
	r.Tier = "int8"
	out := r.Render()
	for _, want := range []string{"int8 fast path vs float64 reference", "acc(int8)", "int8=0"} {
		if !strings.Contains(out, want) {
			t.Fatalf("tier render missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "float32") {
		t.Fatalf("int8 render still mentions float32:\n%s", out)
	}
	r.Tier = ""
	if def := r.Render(); !strings.Contains(def, "float32 fast path vs float64 reference") || !strings.Contains(def, "acc(float32)") {
		t.Fatalf("default tier render lost float32 wording:\n%s", def)
	}
}

func TestParityEmpty(t *testing.T) {
	r := Parity(nil)
	if r.N != 0 || len(r.Suites) != 0 || len(r.Flips) != 0 {
		t.Fatalf("empty report not empty: %+v", r)
	}
	if err := r.Check(0, 0); err != nil {
		t.Fatalf("empty report fails gate: %v", err)
	}
}
